"""Detection-latency and blast-radius benchmark of the adversary layer
(docs/adversary.md).

Emits ``BENCH_adversary.json`` (repo root + ``benchmarks/results/``)
recording, for every cheating-client model at K ∈ {1, 2, 4} shard
servers, on a clean and on a lossy network:

* ``detection_latency_ms`` — virtual milliseconds from run start to the
  first flag against the cheater.  Every model cheats from its very
  first move, so this is the window in which the lie was live;
* ``blast_radius`` — distinct objects the server admitted as the
  cheater's write targets before quarantine (0 = rejected pre-burn);
* ``detectors`` — which screens fired, with raw hit counts;
* ``overhead`` — wall-clock of an honest run with the detection layer
  *unarmed* vs the adversarial run, for the same settings.

Inline assertions keep the numbers honest: every cell must detect,
quarantine exactly the planned cheater, and leave the honest survivors
consistent — the same contract tests/test_adversary_properties.py pins
at K ≤ 2.

Run:  PYTHONPATH=src python benchmarks/bench_adversary.py [--quick]
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: The client every plan corrupts (present at every K).
CHEATER = 2


def _settings(shards: int, lossy: bool, adversary, quick: bool):
    from repro.harness.config import SimulationSettings
    from repro.net.faults import FaultPlan

    return SimulationSettings(
        num_clients=8 if quick else 16,
        num_walls=0,
        moves_per_client=8 if quick else 12,
        world_width=400.0,
        world_height=200.0,
        spawn_extent=40.0,
        seed=11,
        shards=shards,
        rwset_sanitizer="raise",
        fault_plan=(
            FaultPlan(loss_rate=0.05, jitter_ms=30.0, seed=8)
            if lossy
            else None
        ),
        adversary=adversary,
    )


def bench_cell(model: str, shards: int, lossy: bool, quick: bool) -> dict:
    from repro.adversary import AdversaryPlan
    from repro.harness.runner import run_simulation

    plan = AdversaryPlan(assignments=((model, (CHEATER,)),), seed=0)
    result = run_simulation(
        "seve", _settings(shards, lossy, plan, quick)
    )
    if not result.detector_counts:
        raise AssertionError(
            f"{model} went undetected at K={shards} lossy={lossy}"
        )
    if result.clients_quarantined != (CHEATER,):
        raise AssertionError(
            f"{model} K={shards} lossy={lossy}: quarantined "
            f"{result.clients_quarantined}, expected ({CHEATER},)"
        )
    if result.consistency is not None and not result.consistency.consistent:
        raise AssertionError(
            f"{model} K={shards} lossy={lossy}: honest survivors diverged"
        )
    return {
        "detection_latency_ms": min(
            record.at_ms for record in result.detection_records
        ),
        "blast_radius": (result.blast_radius or {}).get(CHEATER, 0),
        "detectors": dict(sorted(result.detector_counts.items())),
        "wall_s": result.wall_seconds,
    }


def bench_overhead(shards: int, quick: bool) -> dict:
    """Wall-clock cost of arming the layer, per K: an honest run with no
    plan vs the same run with a cheater (detector + quarantine paths)."""
    from repro.harness.runner import run_simulation

    honest = run_simulation(
        "seve", _settings(shards, lossy=False, adversary=None, quick=quick)
    )
    cell = bench_cell("forge", shards, lossy=False, quick=quick)
    return {
        "honest_wall_s": honest.wall_seconds,
        "adversarial_wall_s": cell["wall_s"],
    }


def main(argv: list[str]) -> int:
    from repro.adversary import ADVERSARY_MODELS

    quick = "--quick" in argv
    sweep: dict = {}
    worst_latency = 0.0
    for shards in (1, 2, 4):
        by_condition: dict = {}
        for condition, lossy in (("clean", False), ("lossy", True)):
            cells = {}
            for model in ADVERSARY_MODELS:
                cell = bench_cell(model, shards, lossy, quick)
                cells[model] = cell
                worst_latency = max(
                    worst_latency, cell["detection_latency_ms"]
                )
            by_condition[condition] = cells
        by_condition["overhead"] = bench_overhead(shards, quick)
        sweep[str(shards)] = by_condition

    forge_blast = max(
        sweep[k][c]["forge"]["blast_radius"]
        for k in sweep
        for c in ("clean", "lossy")
    )
    report = {
        "benchmark": "adversary",
        "description": (
            "Detection latency (virtual ms from run start to the first "
            "flag against the cheater) and blast radius (write targets "
            "admitted before quarantine) for every cheating-client "
            "model, across shard counts and network conditions.  Every "
            "cell asserts detection, exact quarantine, and honest-"
            "survivor consistency inline."
        ),
        "unit": "virtual milliseconds / admitted write targets",
        "cheater": CHEATER,
        "sweep": sweep,
        "acceptance": {
            "metric": "max detection_latency_ms over all cells",
            "value": worst_latency,
            # Admission screens fire on the first submission and
            # completion screens one commit echo later, but equivocation
            # needs a *second* reporter's conforming echo, and lossy
            # retransmissions stretch both — so the gate is a handful of
            # move periods, not round trips.
            "threshold": 3_000.0,
            "passed": worst_latency <= 3_000.0 and forge_blast == 0,
            "forge_blast_radius": forge_blast,
        },
    }
    text = json.dumps(report, indent=2)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_adversary.json").write_text(text + "\n")
    (REPO_ROOT / "BENCH_adversary.json").write_text(text + "\n")
    print(text)
    for shards, by_condition in sweep.items():
        for condition in ("clean", "lossy"):
            cells = by_condition[condition]
            slowest = max(
                cells, key=lambda m: cells[m]["detection_latency_ms"]
            )
            print(
                f"K={shards} {condition}: slowest detection "
                f"{slowest} at "
                f"{cells[slowest]['detection_latency_ms']:.0f} ms virtual"
            )
    gate = report["acceptance"]
    print(
        f"adversary acceptance: {gate['metric']}={gate['value']:.0f} "
        f"(threshold {gate['threshold']:.0f}, forge blast radius "
        f"{gate['forge_blast_radius']}): "
        f"{'PASS' if gate['passed'] else 'FAIL'}"
    )
    return 0 if gate["passed"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
