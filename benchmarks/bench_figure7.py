"""Figure 7 — response time vs per-action complexity (25 clients).

Expected shape (paper): Central and Broadcast perform well below ~10 ms
per action and degrade drastically past ~12 ms (25 x cost exceeds the
300 ms round budget); SEVE is unaffected across the sweep.
"""

from repro.harness.experiments import run_figure7


def bench(settings):
    return run_figure7(settings, costs_ms=(1.0, 5.0, 10.0, 15.0, 20.0, 25.0))


def test_figure7(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("figure7_complexity", result.render())
    rows = {row[0]: row[1:] for row in result.table.rows}
    central, seve, broadcast = range(3)
    # Fine at 5ms, unusable at 20ms for the evaluating architectures.
    assert rows[20.0][central] > rows[5.0][central] * 4
    assert rows[20.0][broadcast] > rows[5.0][broadcast] * 4
    # SEVE flat (within 30% across the whole complexity sweep).
    assert rows[25.0][seve] < rows[1.0][seve] * 1.3
