"""Wall-clock benchmark of the output-sensitive distribution path.

Emits ``BENCH_pushpath.json`` (repo root + ``benchmarks/results/``)
recording, in the same file, the **baseline** (indexes off — the
pre-index brute-force scans) and **indexed** wall-clock numbers:

* ``push_cycle`` — one First Bound push cycle at 512 and 2048 attached
  clients (the acceptance metric: ``speedup`` at 2048 clients);
* ``closure`` — one Algorithm 6 closure on a 2048-entry queue;
* ``end_to_end`` — wall-clock seconds per simulated second of a full
  engine run (clients, network, workload included), before/after.

The simulated (virtual-time) results are byte-identical either way —
see docs/performance.md and tests/test_distribution_differential.py —
so this file is purely a host-performance trajectory for later PRs.

Also emits ``BENCH_parallel.json``: the K ∈ {1, 2, 4, 8} real-core
sweep of the multiprocessing shard backend (docs/parallel.md) against
the in-process windowed scheduler, with inline identity assertions.

Run:  PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick]

(Run it as a script file, never via stdin: the parallel sweep spawns
workers that re-import ``__main__``.)
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from pushpath_common import build_closure_queue, build_push_server

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

PUSH_ACTIONS = 256  # validated entries per measured cycle


def _best_of(repeats, make, run):
    """Best wall-clock time of ``run(make())`` over ``repeats`` rounds
    (fresh state each round; setup excluded from the timing)."""
    best = float("inf")
    for _ in range(repeats):
        state = make()
        t0 = time.perf_counter()
        run(state)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_push_cycle(num_clients: int, repeats: int) -> dict:
    results = {}
    for label, indexed in (("baseline_brute", False), ("indexed", True)):
        seconds = _best_of(
            repeats,
            lambda: build_push_server(num_clients, PUSH_ACTIONS, indexed=indexed),
            lambda server: server._push_cycle(),
        )
        results[f"{label}_s"] = seconds
    results["speedup"] = results["baseline_brute_s"] / results["indexed_s"]
    results["clients"] = num_clients
    results["actions"] = PUSH_ACTIONS
    return results


def bench_closure(num_entries: int, repeats: int) -> dict:
    from repro.core.closure import transitive_closure

    entries, index = build_closure_queue(num_entries, num_entries // 8)

    def clear_sent():
        for entry in entries:
            entry.sent.clear()

    def run_brute(_):
        transitive_closure(entries, len(entries) - 1, client_id=999)

    def run_indexed(_):
        transitive_closure(
            entries, len(entries) - 1, client_id=999,
            writer_index=index, base_pos=0,
        )

    rounds = max(repeats, 10)  # µs-scale op: best-of needs more rounds
    brute = _best_of(rounds, clear_sent, run_brute)
    indexed = _best_of(rounds, clear_sent, run_indexed)
    return {
        "entries": num_entries,
        "baseline_brute_s": brute,
        "indexed_s": indexed,
        "speedup": brute / indexed,
    }


def bench_end_to_end(num_clients: int, moves_per_client: int) -> dict:
    from repro.core.engine import SeveConfig, SeveEngine
    from repro.harness.config import SimulationSettings
    from repro.harness.workload import MoveWorkload
    from repro.world.manhattan import ManhattanWorld

    settings = SimulationSettings(
        num_clients=num_clients,
        num_walls=500,
        moves_per_client=moves_per_client,
        world_width=1000.0,
        world_height=1000.0,
        spawn_extent=300.0,
        rtt_ms=150.0,
        bandwidth_bps=None,
        move_interval_ms=300.0,
        cost_model="fixed",
        move_cost_ms=1.0,
        eval_overhead_ms=0.1,
        seed=29,
    )
    results = {"clients": num_clients, "moves_per_client": moves_per_client}
    outcomes = {}
    for label, indexed in (("baseline_brute", False), ("indexed", True)):
        world = ManhattanWorld(num_clients, settings.manhattan_config())
        config = SeveConfig(
            mode="first-bound",
            rtt_ms=settings.rtt_ms,
            bandwidth_bps=None,
            omega=settings.omega,
            tick_ms=settings.tick_ms,
            eval_overhead_ms=settings.eval_overhead_ms,
            use_distribution_indexes=indexed,
        )
        engine = SeveEngine(world, num_clients, config)
        workload = MoveWorkload(engine, world, settings)
        horizon = settings.workload_duration_ms + 2_000.0
        t0 = time.perf_counter()
        engine.start(stop_at=horizon)
        workload.install()
        engine.run(until=horizon)
        engine.run_to_quiescence()
        wall = time.perf_counter() - t0
        sim_seconds = engine.sim.now / 1000.0
        results[f"{label}_wall_s"] = wall
        results[f"{label}_wall_s_per_sim_s"] = wall / sim_seconds
        outcomes[label] = (
            engine.server.stats.entries_distributed,
            engine.server.stats.actions_committed,
            engine.sim.now,
        )
    results["sim_seconds"] = sim_seconds
    results["speedup"] = (
        results["baseline_brute_wall_s"] / results["indexed_wall_s"]
    )
    if outcomes["baseline_brute"] != outcomes["indexed"]:
        raise AssertionError(
            f"determinism violation: {outcomes}"  # indexes changed outcomes
        )
    return results


def bench_observability(num_clients: int, moves_per_client: int) -> dict:
    """Cost of the repro.obs layer: the same run unobserved vs with a
    full Observer (metrics + trace + profile) attached.

    Deterministic outcomes must be identical either way — the
    observability determinism contract (docs/observability.md); the
    per-phase breakdown and counter metrics ride along in the report.
    """
    from repro.harness.config import SimulationSettings
    from repro.harness.runner import run_simulation
    from repro.obs import Observer

    settings = SimulationSettings(
        num_clients=num_clients,
        num_walls=500,
        moves_per_client=moves_per_client,
        spawn_extent=300.0,
        rtt_ms=150.0,
        bandwidth_bps=None,
        cost_model="fixed",
        move_cost_ms=1.0,
        eval_overhead_ms=0.1,
        seed=29,
    )
    unobserved = run_simulation("seve", settings, check_consistency=False)
    observer = Observer(trace=True, profile=True)
    observed = run_simulation(
        "seve", settings, check_consistency=False, obs=observer
    )
    for name in ("virtual_ms", "events", "moves_submitted", "total_traffic_kb"):
        if getattr(unobserved, name) != getattr(observed, name):
            raise AssertionError(
                f"observability changed {name}: "
                f"{getattr(unobserved, name)} vs {getattr(observed, name)}"
            )
    counters = {
        name: entry["value"]
        for name, entry in observer.metrics.to_dict().items()
        if entry["type"] == "counter"
    }
    return {
        "clients": num_clients,
        "moves_per_client": moves_per_client,
        "unobserved_wall_s": unobserved.wall_seconds,
        "observed_wall_s": observed.wall_seconds,
        "overhead_percent": 100.0
        * (observed.wall_seconds - unobserved.wall_seconds)
        / unobserved.wall_seconds,
        "trace_events": len(observer.trace),
        "counters": counters,
        "profile": observed.profile,
    }


def bench_sharding(num_clients: int, moves_per_client: int) -> dict:
    """Scaling of the sharded deployment: the same uniform-spawn world
    run at K ∈ {1, 2, 4, 8} shard servers.

    The scalability claim (paper Section VII) is that partitioning the
    world divides the *per-serializer* load: the bottleneck shard's
    push-cycle wall-clock, serialized-action count, and simulated CPU
    all shrink as K grows, while the cross-shard audit stays clean.
    K = 1 runs through the same ShardedSeveEngine (byte-identical to
    the classic engine — tests/test_sharded.py) so the numbers compare
    like with like.
    """
    from repro.core.engine import SeveConfig
    from repro.core.sharded import ShardedSeveEngine, ShardingConfig
    from repro.harness.config import SimulationSettings
    from repro.harness.workload import MoveWorkload
    from repro.metrics.shard_audit import audit_sharded_run
    from repro.world.manhattan import ManhattanWorld

    settings = SimulationSettings(
        num_clients=num_clients,
        num_walls=200,
        moves_per_client=moves_per_client,
        world_width=4000.0,
        world_height=1000.0,
        spawn="uniform",
        rtt_ms=150.0,
        bandwidth_bps=None,
        move_interval_ms=250.0,
        cost_model="fixed",
        move_cost_ms=1.0,
        eval_overhead_ms=0.1,
        seed=29,
    )
    sweep = {}
    bottlenecks = []
    for shards in (1, 2, 4, 8):
        world = ManhattanWorld(num_clients, settings.manhattan_config())
        config = SeveConfig(
            mode="seve",
            rtt_ms=settings.rtt_ms,
            bandwidth_bps=None,
            omega=settings.omega,
            tick_ms=settings.tick_ms,
            threshold=settings.effective_threshold,
            eval_overhead_ms=settings.eval_overhead_ms,
            record_observations=True,
        )
        engine = ShardedSeveEngine(
            world,
            num_clients,
            config,
            sharding=ShardingConfig(
                shards=shards, world_width=settings.world_width
            ),
        )
        # Wall-clock each shard's push cycles in place.
        push_wall = [0.0] * shards
        for server in engine.shard_servers:

            def timed(server=server, inner=type(server)._push_cycle):
                t0 = time.perf_counter()
                inner(server)
                push_wall[server.shard_index] += time.perf_counter() - t0

            server._push_cycle = timed
        workload = MoveWorkload(engine, world, settings)
        horizon = settings.workload_duration_ms + 2 * settings.move_interval_ms
        t0 = time.perf_counter()
        engine.start()
        workload.install()
        engine.run(until=horizon)
        engine.run_to_quiescence()
        wall = time.perf_counter() - t0
        if shards > 1:
            audit = audit_sharded_run(engine)
            if not audit.consistent:
                raise AssertionError(
                    f"shards={shards}: {audit.summary()}"
                )
        rows = [
            {
                "shard": server.shard_index,
                "clients": len(server.clients),
                "serialized": server.stats.actions_serialized,
                "spans_spliced": server.shard_stats.spans_spliced,
                "push_wall_s": push_wall[server.shard_index],
                "cpu_ms": engine.server_hosts[
                    server.shard_index
                ].cpu_time_used,
            }
            for server in engine.shard_servers
        ]
        bottleneck = {
            "push_wall_s": max(row["push_wall_s"] for row in rows),
            "serialized": max(row["serialized"] for row in rows),
            "cpu_ms": max(row["cpu_ms"] for row in rows),
        }
        bottlenecks.append(bottleneck)
        sweep[str(shards)] = {
            "run_wall_s": wall,
            "bottleneck": bottleneck,
            "shards": rows,
        }
    # The simulated load metrics are deterministic: require a strict
    # drop at every doubling.  Push wall-clock is µs-scale and noisy
    # between adjacent K, so it only has to fall across the full sweep.
    decreasing = (
        all(
            later["serialized"] < earlier["serialized"]
            and later["cpu_ms"] < earlier["cpu_ms"]
            for earlier, later in zip(bottlenecks, bottlenecks[1:])
        )
        and bottlenecks[-1]["push_wall_s"] < bottlenecks[0]["push_wall_s"]
    )
    return {
        "clients": num_clients,
        "moves_per_client": moves_per_client,
        "sweep": sweep,
        "bottleneck_decreasing": decreasing,
    }


def bench_parallel(
    num_clients: int, moves_per_client: int, num_walls: int
) -> dict:
    """Real-core speedup of the multiprocessing backend.

    The K ∈ {1, 2, 4, 8} sweep above measures the *virtual-time*
    bottleneck-shard trajectory; this sweep measures actual wall-clock:
    the same sharded workload run with ``backend="inproc"`` (windowed
    scheduler, one process) and ``backend="parallel"`` (one spawned
    worker per shard, batched cross-shard bundles over the codec).

    Determinism is asserted inline: at every K the two backends must
    produce identical deterministic outputs, so any speedup is free.

    The ≥2x-at-K=4 acceptance only applies on hosts with ≥4 cores
    (``os.cpu_count()``); on smaller hosts the sweep still runs and
    records honest numbers, but the gate reports ``"gated"``.
    """
    import os

    from repro.harness.config import SimulationSettings
    from repro.harness.runner import run_simulation

    def settings(shards: int, backend: str, workers: int) -> SimulationSettings:
        return SimulationSettings(
            num_clients=num_clients,
            num_walls=num_walls,
            moves_per_client=moves_per_client,
            world_width=4000.0,
            world_height=1000.0,
            spawn="uniform",
            rtt_ms=150.0,
            bandwidth_bps=None,
            move_interval_ms=250.0,
            # walls-priced evaluation: per-action cost scales with local
            # wall density, so shard servers carry real simulated CPU
            # and the coordinator windows amortize over long quanta.
            cost_model="walls",
            eval_overhead_ms=1.9,
            # wide epochs: backbone lookahead bounds the barrier rate,
            # so a fat backbone quantum keeps workers off the barrier.
            backbone_latency_ms=25.0,
            seed=29,
            shards=shards,
            backend=backend,
            workers=workers,
        )

    def run_key(r):
        return (
            r.moves_submitted, r.responses_observed, r.response.mean,
            r.total_traffic_kb, r.virtual_ms, r.events, r.total_cpu_ms,
        )

    cores = os.cpu_count() or 1
    sweep = {}
    for shards in (1, 2, 4, 8):
        row: dict = {"shards": shards}
        keys = {}
        # Both backends run the identical windowed schedule (one
        # partition per shard); the only variable is processes.
        for backend in ("inproc", "parallel"):
            result = run_simulation(
                "seve",
                settings(shards, backend, workers=shards),
                check_consistency=False,
            )
            row[f"{backend}_wall_s"] = result.wall_seconds
            keys[backend] = run_key(result)
        if keys["inproc"] != keys["parallel"]:
            raise AssertionError(
                f"parallel backend diverged at K={shards}: {keys}"
            )
        # Context row: the classic single-partition scheduler (what a
        # plain `--shards K` run uses; differs from the windowed drive
        # by the documented ~1 ms drain refinement, so no identity
        # assertion against it).
        classic = run_simulation(
            "seve", settings(shards, "inproc", workers=0),
            check_consistency=False,
        )
        row["classic_wall_s"] = classic.wall_seconds
        row["identical"] = True
        row["speedup"] = row["inproc_wall_s"] / row["parallel_wall_s"]
        sweep[str(shards)] = row
    return {
        "clients": num_clients,
        "moves_per_client": moves_per_client,
        "walls": num_walls,
        "cores": cores,
        "sweep": sweep,
    }


def parallel_report(quick: bool) -> dict:
    import os

    cores = os.cpu_count() or 1
    body = bench_parallel(
        24 if quick else 256,
        6 if quick else 20,
        3_000 if quick else 10_000,
    )
    k4 = body["sweep"]["4"]["speedup"]
    gated = cores < 4
    report = {
        "benchmark": "parallel",
        "description": (
            "Wall-clock speedup of the multiprocessing shard backend "
            "(one spawned worker per shard, windowed virtual-time "
            "epochs, codec-framed cross-shard bundles) over the "
            "in-process windowed scheduler.  Deterministic outputs are "
            "asserted identical between backends at every K."
        ),
        "unit": "seconds (wall-clock, whole run)",
        **body,
        "acceptance": {
            "metric": "sweep.4.speedup",
            "value": k4,
            "threshold": 2.0,
            "requires_cores": 4,
            "gated": gated,
            "passed": True if gated else k4 >= 2.0,
            "note": (
                f"host has {cores} core(s) < 4: real-core speedup is "
                "physically unavailable, gate recorded as not applicable"
                if gated
                else "measured on a >=4-core host"
            ),
        },
    }
    return report


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    repeats = 2 if quick else 3
    report = {
        "benchmark": "pushpath",
        "description": (
            "Wall-clock cost of the server distribution path, before "
            "(brute-force scans) and after (spatial client index + "
            "inverted write index + fast event core).  Simulated "
            "ServerCosts/virtual-time results are identical either way."
        ),
        "unit": "seconds (wall-clock, best of N rounds)",
        "push_cycle": {
            "512": bench_push_cycle(512, repeats),
            "2048": bench_push_cycle(2048, repeats),
        },
        "closure": bench_closure(2048, repeats),
        "end_to_end": bench_end_to_end(
            64 if quick else 192, 6 if quick else 10
        ),
        "observability": bench_observability(
            32 if quick else 96, 6 if quick else 10
        ),
        "sharding": bench_sharding(
            16 if quick else 32, 8 if quick else 12
        ),
    }
    report["acceptance"] = {
        "metric": "push_cycle.2048.speedup",
        "value": report["push_cycle"]["2048"]["speedup"],
        "threshold": 3.0,
        "passed": report["push_cycle"]["2048"]["speedup"] >= 3.0
        and report["sharding"]["bottleneck_decreasing"],
    }
    text = json.dumps(report, indent=2)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pushpath.json").write_text(text + "\n")
    (REPO_ROOT / "BENCH_pushpath.json").write_text(text + "\n")
    print(text)
    print(
        f"\npush-cycle @2048 clients: "
        f"{report['push_cycle']['2048']['baseline_brute_s']*1000:.1f} ms -> "
        f"{report['push_cycle']['2048']['indexed_s']*1000:.1f} ms "
        f"({report['push_cycle']['2048']['speedup']:.1f}x)"
    )

    parallel = parallel_report(quick)
    parallel_text = json.dumps(parallel, indent=2)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(parallel_text + "\n")
    (REPO_ROOT / "BENCH_parallel.json").write_text(parallel_text + "\n")
    for shards, row in parallel["sweep"].items():
        print(
            f"parallel K={shards}: inproc {row['inproc_wall_s']:.2f}s -> "
            f"parallel {row['parallel_wall_s']:.2f}s "
            f"({row['speedup']:.2f}x, identical outputs)"
        )
    gate = parallel["acceptance"]
    print(
        f"parallel acceptance: {gate['metric']}={gate['value']:.2f} "
        f"(threshold {gate['threshold']}, "
        f"{'gated: ' + gate['note'] if gate['gated'] else 'measured'})"
    )
    return (
        0
        if report["acceptance"]["passed"] and parallel["acceptance"]["passed"]
        else 1
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
