"""Ablation — the First Bound push fraction omega.

The server pushes every omega x RTT and the response bound is
(1+omega) x RTT: small omega buys latency with more frequent batches.
"""

from repro.harness.experiments import run_ablation_omega


def bench(settings):
    return run_ablation_omega(settings, omegas=(0.1, 0.25, 0.5, 0.75, 0.9))


def test_ablation_omega(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("ablation_omega", result.render())
    rows = result.table.rows  # (omega, bound, mean, p95, batches)
    means = [row[2] for row in rows]
    # Mean response grows monotonically (within noise) with omega.
    assert means[-1] > means[0]
    # And every measured mean respects its theoretical bound + slack.
    for omega, bound, mean, p95, _ in rows:
        assert mean < bound + 150.0
