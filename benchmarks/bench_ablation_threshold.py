"""Ablation — the Information Bound threshold.

Tighter thresholds break conflict chains earlier: more moves dropped,
smaller closures.  Table I's default is 1.5 x visibility = 45 units.
"""

from repro.harness.experiments import run_ablation_threshold


def bench(settings):
    return run_ablation_threshold(
        settings, thresholds=(10.0, 20.0, 30.0, 45.0, 90.0)
    )


def test_ablation_threshold(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("ablation_threshold", result.render())
    drops = [row[1] for row in result.table.rows]
    # Tightest threshold drops at least as much as the loosest.
    assert drops[0] >= drops[-1]
