"""Figure 9 — total data transfer vs number of clients.

Expected shape (paper): Broadcast traffic is excessive (quadratic in
total, i.e. per-client transfer grows linearly with the client count);
SEVE's total server traffic does not differ significantly from the
Central model, which is optimal in total traffic.
"""

from repro.harness.experiments import run_figure9


def bench(settings):
    return run_figure9(settings, client_counts=(8, 16, 32, 48, 64))


def test_figure9(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("figure9_bandwidth", result.render())
    rows = {row[0]: row[1:] for row in result.table.rows}
    central, seve, broadcast = range(3)
    # Broadcast per-client traffic grows ~linearly with n (quadratic
    # total traffic).
    assert rows[64][broadcast] > rows[8][broadcast] * 4
    # Central and SEVE grow sublinearly (driven by local density, not
    # by the population size).
    assert rows[64][central] < rows[8][central] * 4.5
    assert rows[64][seve] < rows[8][seve] * 4.5
    # SEVE within a small constant of Central at full scale...
    assert rows[64][seve] < rows[64][central] * 4
    # ...and both far below Broadcast.
    assert rows[64][broadcast] > rows[64][seve] * 3
