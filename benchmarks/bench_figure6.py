"""Figure 6 — response time vs number of clients.

Expected shape (paper): Central and Broadcast break down at ~30-32
clients; SEVE's response stays flat near (1+omega) x RTT across the
whole sweep.
"""

from repro.harness.experiments import run_figure6


def bench(settings):
    return run_figure6(settings, client_counts=(8, 16, 24, 32, 40, 56, 64))


def test_figure6(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("figure6_scalability", result.render())
    rows = {row[0]: row[1:] for row in result.table.rows}
    central, seve, broadcast = range(3)
    # SEVE stays (near-)flat: response at 64 clients within 40% of the
    # 8-client response, versus the >10x blow-up of the others.
    assert rows[64][seve] < rows[8][seve] * 1.4
    # Central and Broadcast blow past 4x their small-scale response.
    assert rows[64][central] > rows[8][central] * 4
    assert rows[64][broadcast] > rows[8][broadcast] * 4
    # The knee sits between 24 and 40 clients.
    assert rows[24][central] < rows[8][central] * 2
    assert rows[40][central] > rows[24][central] * 2
