"""Ablation — velocity-based area culling (Section IV-B).

Culling replaces an action's static influence sphere with the projected
position of its moving effect, tightening the Equation (1) predicate.
Consistency is preserved (closures still ship every needed action);
the measurement is distribution volume.
"""

from repro.harness.experiments import run_ablation_culling


def bench(settings):
    return run_ablation_culling(settings, client_counts=(16, 32, 48))


def test_ablation_culling(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("ablation_culling", result.render())
    for clients, plain_kb, culled_kb, plain_ms, culled_ms in result.table.rows:
        assert plain_kb > 0 and culled_kb > 0
        # Culling must never *increase* traffic by more than noise.
        assert culled_kb <= plain_kb * 1.1
