"""Shared builders for the push-path wall-clock benchmarks.

Used by both the pytest-benchmark microbenchmarks in ``bench_micro.py``
and the standalone ``bench_wallclock.py`` script that emits
``BENCH_pushpath.json``.  The scenario is the server's hot loop in
isolation: N clients attached (avatars spread over a large world), a
window of freshly validated actions in the queue, and one
``_push_cycle()`` to distribute them — exactly the work the spatial
client index and the inverted write index make output-sensitive.
"""

from __future__ import annotations

import random

from repro.core.action import Action, ActionId
from repro.core.first_bound import FirstBoundPredicate
from repro.core.server_incomplete import IncompleteWorldServer
from repro.net.host import Host
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.state.versioned import VersionedStore
from repro.types import SERVER_ID
from repro.world.avatar import avatar_id, avatar_object
from repro.world.geometry import Vec2


class PushAction(Action):
    """A move-shaped action: writes its own avatar, reads a neighbour's."""

    def __init__(self, action_id, reads, writes, position):
        super().__init__(
            action_id,
            reads=frozenset(reads) | frozenset(writes),
            writes=frozenset(writes),
            position=position,
            radius=10.0,
            cost_ms=1.0,
        )

    def compute(self, store):
        return {oid: {} for oid in self.writes}


def build_push_server(
    num_clients: int,
    num_actions: int,
    *,
    indexed: bool,
    world_extent: float = 2000.0,
    seed: int = 0,
):
    """A First Bound server with ``num_clients`` attached and
    ``num_actions`` validated entries queued, ready for one
    ``_push_cycle()``."""
    rng = random.Random(seed)
    sim = Simulator()
    network = Network(sim, rtt_ms=100.0, bandwidth_bps=None)
    host = Host(sim, SERVER_ID)
    positions = [
        Vec2(rng.uniform(0.0, world_extent), rng.uniform(0.0, world_extent))
        for _ in range(num_clients)
    ]
    state = VersionedStore(
        avatar_object(i, positions[i], speed=10.0) for i in range(num_clients)
    )
    predicate = FirstBoundPredicate(max_speed=10.0, rtt_ms=100.0, omega=0.5)
    server = IncompleteWorldServer(
        sim,
        network,
        host,
        state,
        predicate=predicate,
        avatar_of=avatar_id,
        use_spatial_index=indexed,
        use_writer_index=indexed,
    )
    sink = lambda src, payload: None  # noqa: E731 — discard deliveries
    for client_id in range(num_clients):
        network.register(client_id, sink)
        server.attach_client(client_id, radius=10.0)
    for k in range(num_actions):
        client_id = rng.randrange(num_clients)
        neighbour = rng.randrange(num_clients)
        action = PushAction(
            ActionId(client_id, k),
            reads={avatar_id(neighbour)},
            writes={avatar_id(client_id)},
            position=positions[client_id],
        )
        server._admit(client_id, action)
    return server


def build_closure_queue(
    num_entries: int, num_objects: int, *, seed: int = 1, group_size: int = 8
):
    """A long uncommitted queue plus its writer index, for closure
    microbenchmarks.  Objects are partitioned into read-groups of
    ``group_size`` so a closure stays inside one group — short chains in
    a long queue, the regime the inverted write index targets — while
    the brute walk still scans all ``num_entries``."""
    from repro.core.closure import QueueEntry
    from repro.core.indexes import WriterIndex

    rng = random.Random(seed)
    entries = []
    index = WriterIndex()
    for pos in range(num_entries):
        owner = rng.randrange(num_objects)
        group = owner - owner % group_size
        reads = {f"o:{group + rng.randrange(group_size)}" for _ in range(2)}
        action = PushAction(
            ActionId(owner, pos),
            reads,
            {f"o:{owner}"},
            position=Vec2(rng.uniform(0, 100), rng.uniform(0, 100)),
        )
        entry = QueueEntry(pos, action, arrived_at=float(pos))
        entry.valid = True
        entries.append(entry)
        index.note_enqueued(pos, action.writes)
    return entries, index
