"""Server capacity — the paper's "limit of our implementation is about
3500 clients" claim (Section V-B.1).

The SEVE server only timestamps, validates and computes closures
(calibrated at ~0.08 ms of CPU per move); at 3.33 moves/s per client a
single server CPU saturates near 300ms / 0.08ms / (cycle) — we sweep the
client count analytically through the CPU model rather than simulating
thousands of full clients, and report the knee.
"""

from repro.metrics.report import Table
from repro.net.host import Host
from repro.net.simulator import Simulator


MOVE_RATE_PER_CLIENT = 1000.0 / 300.0  # moves per second
SERVER_COST_MS = 0.02 + 0.04 + 0.02  # timestamp + closure + push share


def server_delay_at(num_clients: int, duration_s: float = 10.0) -> float:
    """Mean queueing+service delay of the server CPU at a given load."""
    sim = Simulator()
    host = Host(sim, -1)
    interval = 1000.0 / (num_clients * MOVE_RATE_PER_CLIENT)
    delays = []

    def submit():
        submitted = sim.now
        host.execute(SERVER_COST_MS, lambda: delays.append(sim.now - submitted))

    stop = sim.call_every(interval, submit, stop_at=duration_s * 1000.0)
    sim.run()
    stop()
    return sum(delays) / len(delays)


def bench():
    table = Table(
        "Server capacity: mean serialization delay vs client count",
        ("clients", "offered_load", "mean_delay_ms"),
        note="paper: single-server limit empirically ~3500 clients",
    )
    results = {}
    for clients in (500, 1000, 2000, 3000, 3500, 4000, 5000):
        load = clients * MOVE_RATE_PER_CLIENT * SERVER_COST_MS / 1000.0
        delay = server_delay_at(clients)
        table.add_row(clients, round(load, 3), delay)
        results[clients] = delay
    return table, results


def test_server_capacity_knee(benchmark, report_sink):
    table, results = benchmark.pedantic(bench, rounds=1, iterations=1)
    report_sink("server_capacity", table.render())
    # Stable well below the knee...
    assert results[2000] < 1.0
    assert results[3000] < 5.0
    # ...and saturating past ~3500-4000 clients.
    assert results[5000] > results[3000] * 10
