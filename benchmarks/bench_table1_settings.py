"""Table I — simulation settings.

Not a measurement: renders the configuration table the other benchmarks
run under, so the results directory is self-describing.
"""

from repro.harness.experiments import run_table1


def bench(settings):
    return run_table1(settings)


def test_table1(benchmark, bench_settings, report_sink):
    result = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("table1_settings", result.render())
