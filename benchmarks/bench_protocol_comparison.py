"""Section II-B — consistency protocol comparison.

The paper motivates action-based protocols by criticising the two
classical families: lock-based protocols need "twice the round trip
time" before a client can proceed to the next conflicting transaction,
and timestamp-ordered optimistic protocols abort whenever anything in a
read set changed ("such as some player moving").  This benchmark puts
all of them on the same Manhattan People workload at two contention
levels and reports response time, abort rate, and traffic.
"""

from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.metrics.report import Table

ARCHS = ("seve", "incomplete", "locking", "timestamp", "central")


def bench(base: SimulationSettings):
    table = Table(
        "Protocol comparison (Section II-B): SEVE vs locking vs OCC",
        ("contention", "protocol", "mean_ms", "p95_ms", "aborted_pct", "KB/client"),
        note="locking pays 2xRTT; OCC aborts under contention; SEVE does neither",
    )
    runs = {}
    scenarios = {
        # Sparse: conflicts are rare.
        "low": base.with_(num_clients=16, spawn_extent=400.0,
                          num_walls=min(base.num_walls, 2_000)),
        # Dense cluster: everyone reads everyone.
        "high": base.with_(num_clients=16, spawn_extent=15.0,
                           num_walls=min(base.num_walls, 2_000)),
    }
    for label, settings in scenarios.items():
        for architecture in ARCHS:
            run = run_simulation(architecture, settings, check_consistency=False)
            runs[(label, architecture)] = run
            aborted_pct = 0.0
            expected = settings.num_clients * settings.moves_per_client
            lost = expected - run.responses_observed
            if architecture == "timestamp":
                aborted_pct = 100.0 * lost / expected
            elif architecture == "seve":
                aborted_pct = run.drop_percent
            table.add_row(
                label,
                architecture,
                run.mean_response_ms,
                run.response.p95,
                aborted_pct,
                run.client_traffic_kb,
            )
    return table, runs


def test_protocol_comparison(benchmark, bench_settings, report_sink):
    table, runs = benchmark.pedantic(bench, args=(bench_settings,), rounds=1, iterations=1)
    report_sink("protocol_comparison", table.render())
    rtt = bench_settings.rtt_ms
    # Locking's floor is 2 x RTT even without contention.
    assert runs[("low", "locking")].mean_response_ms > 2 * rtt
    # SEVE and OCC answer in ~1 RTT when conflicts are rare.
    assert runs[("low", "incomplete")].mean_response_ms < 1.5 * rtt
    assert runs[("low", "timestamp")].mean_response_ms < 1.5 * rtt
    # Under contention, locking serializes and OCC loses transactions,
    # while SEVE's response moves comparatively little.
    low_seve = runs[("low", "seve")].mean_response_ms
    high_seve = runs[("high", "seve")].mean_response_ms
    assert high_seve < low_seve * 2.5
    expected = 16 * bench_settings.moves_per_client
    ts_lost = expected - runs[("high", "timestamp")].responses_observed
    assert ts_lost > 0  # OCC loses transactions to the abort storm
