"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper at a
calibrated (but wall-clock-friendly) scale, prints the report table, and
saves it under ``benchmarks/results/`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the complete paper-vs-measured record on
disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.config import SimulationSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The benchmark scale: Table I parameters with a reduced move count and
#: wall count so the full suite runs in minutes.  The *shape* of every
#: figure is preserved (knees depend on rates and costs, not run length);
#: pass ``--paper-scale`` for the full 100-move, 100k-wall runs.
BENCH_SETTINGS = SimulationSettings(
    num_walls=20_000,
    moves_per_client=40,
)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full Table I scale "
        "(100 moves/client, 100k walls) — slow",
    )


@pytest.fixture(scope="session")
def bench_settings(request) -> SimulationSettings:
    if request.config.getoption("--paper-scale"):
        return SimulationSettings()
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def report_sink():
    """Callable that prints a report table and persists it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return sink
