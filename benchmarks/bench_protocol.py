"""Benchmark of the protocol conformance toolchain
(docs/static_analysis.md).

Emits ``BENCH_protocol.json`` (repo root + ``benchmarks/results/``)
recording the two halves of the protocol analyzer on the shipped tree:

* **Static flow graph** — files scanned, message types mapped, how many
  are registered / enveloped / conservation-tracked / codec-covered,
  analyzer wall time, and the finding count (must be zero: every
  registered message has a handler, a field encoder, and a decode
  path).
* **Schedule-permutation explorer** — scenarios replayed, schedules
  explored, engine runs, perturbable virtual-time windows per
  scenario, and explorer wall time.  The acceptance gate is the
  tentpole claim: all permuted delivery orders hold the invariants
  (quiescence, cross-shard audit, elastic conservation, deferred-reply
  accounting), with the identity schedule byte-deterministic.

Run:  PYTHONPATH=src python benchmarks/bench_protocol.py [--quick]
"""

from __future__ import annotations

import json
import pathlib
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

SCAN_ROOTS = ["src/repro/core", "src/repro/net", "src/repro/baselines"]


def bench_static() -> dict:
    from repro.analysis.protocol import analyze_paths

    started = time.perf_counter()
    model = analyze_paths(
        [REPO_ROOT / p for p in SCAN_ROOTS], root=REPO_ROOT
    )
    elapsed = time.perf_counter() - started
    flows = model.flows.values()
    return {
        "files_scanned": model.files_scanned,
        "messages": len(model.flows),
        "registered": sum(1 for f in flows if f.registered),
        "enveloped": sum(1 for f in flows if f.enveloped),
        "conservation_tracked": sum(
            1 for f in flows if f.conservation is not None
        ),
        "codec_covered": sum(
            1 for f in flows if f.encoder_line is not None
        ),
        "handler_sites": sum(len(f.handlers) for f in flows),
        "sender_sites": sum(len(f.senders) for f in flows),
        "findings": len(model.findings),
        "wall_s": round(elapsed, 3),
    }


def bench_explorer(quick: bool) -> dict:
    from repro.analysis.races import explore

    budget = 4 if quick else 12
    started = time.perf_counter()
    report = explore(budget=budget)
    elapsed = time.perf_counter() - started
    return {
        "budget": budget,
        "scenarios": len(report.results),
        "schedules": report.total_schedules,
        "runs": report.total_runs,
        "per_scenario": [
            {
                "scenario": result.scenario,
                "schedules": result.schedules,
                "runs": result.runs,
                "perturbable_windows": result.perturbable_windows,
                "deterministic": result.deterministic,
                "violations": len(result.violations),
            }
            for result in report.results
        ],
        "ok": report.ok,
        "wall_s": round(elapsed, 3),
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    static = bench_static()
    explorer = bench_explorer(quick)

    passed = static["findings"] == 0 and explorer["ok"]
    report = {
        "benchmark": "protocol",
        "description": (
            "Protocol conformance toolchain on the shipped tree: the "
            "static message-flow graph + codec-coverage analyzer "
            "(finding count must be zero) and the schedule-permutation "
            "race explorer (every permuted delivery order must hold "
            "the invariants; identity schedules byte-deterministic)."
        ),
        "unit": "schedules explored / engine runs / analyzer wall s",
        "static": static,
        "explorer": explorer,
        "acceptance": {
            "metric": "zero static findings and zero schedule violations",
            "static_findings": static["findings"],
            "explorer_ok": explorer["ok"],
            "passed": passed,
        },
    }
    text = json.dumps(report, indent=2)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_protocol.json").write_text(text + "\n")
    (REPO_ROOT / "BENCH_protocol.json").write_text(text + "\n")
    print(text)
    print(
        f"static: {static['messages']} message types over "
        f"{static['files_scanned']} files, {static['findings']} "
        f"finding(s) in {static['wall_s']}s"
    )
    print(
        f"explorer: {explorer['schedules']} schedule(s) / "
        f"{explorer['runs']} run(s) across {explorer['scenarios']} "
        f"scenario(s) in {explorer['wall_s']}s"
    )
    gate = report["acceptance"]
    print(
        f"protocol acceptance: findings={gate['static_findings']}, "
        f"explorer_ok={gate['explorer_ok']}: "
        f"{'PASS' if gate['passed'] else 'FAIL'}"
    )
    return 0 if passed else 1


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
