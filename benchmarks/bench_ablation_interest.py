"""Ablation — inconsequential action elimination (Section IV-A).

A combat world where half the avatars are insects: clients subscribed
only to their own species' movement receive fewer pushed actions, at
identical consistency (closures still deliver whatever their own
actions transitively need).
"""

from repro.core.engine import SeveConfig, SeveEngine
from repro.core.interest import profile
from repro.metrics.report import Table
from repro.world.combat import CombatConfig, CombatWorld


def run_once(with_interests: bool, num_clients: int = 24, moves: int = 30):
    world = CombatWorld(
        num_clients, CombatConfig(insect_fraction=0.5, seed=3)
    )
    interests = None
    if with_interests:
        interests = {
            cid: profile(world.species_of(cid)) for cid in range(num_clients)
        }
    engine = SeveEngine(
        world,
        num_clients,
        SeveConfig(mode="seve", rtt_ms=238.0, tick_ms=100.0, threshold=60.0),
        interests=interests,
    )
    engine.start(stop_at=60_000)
    for cid in range(num_clients):
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": moves}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(
                world.plan_move(
                    client.optimistic, cid, client.next_action_id(), cost_ms=2.0
                )
            )

        engine.sim.call_every(
            300.0, submit, start_delay=7.0 + cid, stop_at=300.0 * (moves + 2)
        )
    engine.run(until=300.0 * (moves + 2))
    engine.run_to_quiescence()
    return engine


def bench():
    table = Table(
        "Ablation: interest classes (Section IV-A), combat world",
        ("interests", "entries_pushed", "client_kb", "stable_evals"),
        note="half insects, half humans; subscribers get their own species only",
    )
    rows = {}
    for with_interests in (False, True):
        engine = run_once(with_interests)
        evals = sum(c.stats.stable_evaluations for c in engine.clients.values())
        client_kb = sum(
            engine.network.meter.host_bytes(cid) for cid in engine.clients
        ) / len(engine.clients) / 1024.0
        table.add_row(
            "on" if with_interests else "off",
            engine.server.stats.entries_distributed,
            client_kb,
            evals,
        )
        rows[with_interests] = (engine.server.stats.entries_distributed, evals)
    return table, rows


def test_ablation_interest(benchmark, report_sink):
    table, rows = benchmark.pedantic(bench, rounds=1, iterations=1)
    report_sink("ablation_interest", table.render())
    # Interest filtering must reduce distribution volume.
    assert rows[True][0] < rows[False][0]
    assert rows[True][1] <= rows[False][1]
