#!/usr/bin/env python3
"""Siege: a destructible environment under SEVE.

Figure 1 of the paper ranks *simulators* above static-world games
because users can destroy the environment itself.  Here the walls are
world state: sappers knock them down, and every replica must agree on
whether a passage is open — a move that read a wall conflicts with the
demolition that broke it, so the closure machinery ships the demolition
to everyone it matters to.

The script besieges a walled yard: three sappers demolish their way
inward while three defenders patrol.  At the end it verifies that no
replica disagrees with the authoritative state about any wall.

Run:  python examples/siege.py
"""

from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.consistency import ConsistencyChecker
from repro.metrics.report import Table
from repro.world.siege import SiegeConfig, SiegeWorld

SAPPERS = (0, 1, 2)
DEFENDERS = (3, 4, 5)


def main() -> None:
    world = SiegeWorld(
        6, SiegeConfig(num_walls=150, spawn_extent=80.0, seed=11)
    )
    engine = SeveEngine(
        world,
        6,
        SeveConfig(mode="seve", tick_ms=50.0, seed_full_state=True,
                   enable_audit=True),
    )
    engine.start(stop_at=120_000)

    def act(cid, planner):
        client = engine.client(cid)
        action = planner(client.optimistic, cid, client.next_action_id())
        if action is not None:
            client.submit(action)

    rounds = 20
    for step in range(rounds):
        t = 100.0 + step * 300.0
        for cid in SAPPERS + DEFENDERS:
            engine.sim.schedule(
                t + cid,
                lambda cid=cid: act(
                    cid, lambda s, c, a: world.plan_move(s, c, a, cost_ms=1.5)
                ),
            )
        # Sappers demolish every other round.
        if step % 2 == 0:
            for cid in SAPPERS:
                engine.sim.schedule(
                    t + 150.0 + cid,
                    lambda cid=cid: act(
                        cid,
                        lambda s, c, a: world.plan_demolish(s, c, a, cost_ms=2.0),
                    ),
                )
    engine.run(until=100.0 + rounds * 300.0 + 1000.0)
    engine.run_to_quiescence()

    broken = [
        obj.oid for obj in engine.state.objects()
        if obj.oid.startswith("wall:") and obj.get("intact") is False
    ]
    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.stable for cid, c in engine.clients.items()}
    )
    summary = engine.response_times.summary()

    table = Table("Siege results", ("metric", "value"))
    table.add_row("walls demolished", len(broken))
    table.add_row("actions committed", engine.server.stats.actions_committed)
    table.add_row("moves dropped", engine.total_dropped)
    table.add_row("mean response (ms)", summary.mean)
    table.add_row("consistency", report.summary())
    table.add_row("audit alerts", len(engine.audit.alerts))
    print(table.render())
    print(
        "\nEvery wall's fate is agreed on by every replica: demolitions\n"
        "ride the same transitive closures as avatar state, so the\n"
        "environment itself is strongly consistent."
    )


if __name__ == "__main__":
    main()
