#!/usr/bin/env python3
"""The scrying spell (Section I of the paper).

A healer casts a spell that identifies and heals the *most wounded* ally
in a crowd, while archers keep shooting crowd members.  Which ally the
spell heals depends on every attack anywhere in the crowd — exactly the
kind of semantic, data-dependent interaction that visibility-based
filtering (RING) cannot keep consistent and SEVE's action closures can.

The script runs the same battle twice — once under SEVE, once under a
RING-like architecture — and compares who got healed on each replica.

Run:  python examples/scrying_spell.py
"""

import random

from repro.baselines.common import BaselineConfig
from repro.baselines.ring import RingEngine
from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.consistency import pairwise_divergence
from repro.metrics.report import Table
from repro.world.avatar import avatar_id
from repro.world.combat import CombatConfig, CombatWorld

NUM_AVATARS = 10
HEALER = 0
CROWD = list(range(1, NUM_AVATARS))
ARCHERS = [1, 3, 5]


def script_battle(engine, world, submit):
    """Deterministic battle: archers volley, the healer scries."""
    rng = random.Random(99)
    t = 0.0
    seqs = {cid: 0 for cid in range(NUM_AVATARS)}

    def next_id(cid):
        from repro.core.action import ActionId

        action_id = ActionId(cid, seqs[cid])
        seqs[cid] += 1
        return action_id

    # Three rounds: volleys of arrows, then a scrying each round.
    for round_index in range(3):
        for archer in ARCHERS:
            target = rng.choice([c for c in CROWD if c != archer])
            t += 40.0
            engine.sim.schedule(
                t,
                lambda a=archer, tgt=target: submit(
                    a,
                    world.plan_shot(
                        engine.planning_store(a), a, tgt, next_id(a), cost_ms=1.0
                    ),
                ),
            )
        t += 60.0
        engine.sim.schedule(
            t,
            lambda: submit(
                HEALER,
                world.plan_scrying(
                    engine.planning_store(HEALER),
                    HEALER,
                    CROWD,
                    next_id(HEALER),
                    cost_ms=2.0,
                ),
            ),
        )
        t += 150.0


def crowd_health(store):
    return {
        cid: (
            int(store.get(avatar_id(cid))["health"])
            if avatar_id(cid) in store
            else None
        )
        for cid in CROWD
    }


def run_seve():
    world = CombatWorld(NUM_AVATARS, CombatConfig(seed=4))
    engine = SeveEngine(
        world,
        NUM_AVATARS,
        SeveConfig(mode="seve", seed_full_state=True, tick_ms=50.0),
    )
    engine.start(stop_at=30_000)
    script_battle(engine, world, lambda cid, a: engine.client(cid).submit(a))
    engine.run(until=5_000)
    engine.run_to_quiescence()
    return engine


def run_ring():
    world = CombatWorld(NUM_AVATARS, CombatConfig(seed=4))
    engine = RingEngine(
        world,
        NUM_AVATARS,
        BaselineConfig(),
        visibility=40.0,
    )
    script_battle(engine, world, engine.submit)
    engine.run()
    return engine


def main() -> None:
    seve = run_seve()
    ring = run_ring()

    table = Table(
        "Crowd health after the battle (authoritative state)",
        ("avatar", "seve", "ring_server", "ring_replica_disagreements"),
    )
    ring_replicas = {cid: c.store for cid, c in ring.clients.items()}
    divergent = pairwise_divergence(ring_replicas)
    divergent_oids = {oid for _, _, oid in divergent}
    for cid in CROWD:
        oid = avatar_id(cid)
        table.add_row(
            oid,
            int(seve.state.get(oid)["health"]),
            int(ring.state.get(oid)["health"]),
            "DIVERGED" if oid in divergent_oids else "agree",
        )
    print(table.render())

    from repro.metrics.consistency import ConsistencyChecker

    seve_replicas = {cid: c.stable for cid, c in seve.clients.items()}
    seve_report = ConsistencyChecker(seve.state).check_all(seve_replicas)
    ring_report = ConsistencyChecker(ring.state).check_all(ring_replicas)
    print(f"\nSEVE consistency: {seve_report.summary()}")
    print(f"RING consistency: {ring_report.summary()}")
    print(f"RING inter-replica divergence: {len(divergent)} object pairs")
    print(
        "\nThe scrying spell reads the whole crowd; under RING, clients that\n"
        "missed an out-of-sight arrow heal the WRONG ally and their worlds\n"
        "permanently disagree. SEVE ships the conflicting arrows inside the\n"
        "spell's transitive closure, so every replica heals the same target."
    )


if __name__ == "__main__":
    main()
