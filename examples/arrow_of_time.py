#!/usr/bin/env python3
"""The arrow anomaly (Figures 2 and 3 of the paper).

Three archers stand in a line — A, B, C — with B visible to both
neighbours but A and C out of each other's sight.  C shoots B dead;
an instant later (before anyone has heard about C's arrow) B shoots A.

Causally, B was already dead when it loosed its arrow, so A must live.
A visibility-filtered architecture (RING) never tells A's client about
C's shot, so A's client kills A anyway — and the replicas disagree
forever.  SEVE's transitive closure ships C's shot to everyone who must
evaluate B's, restoring the arrow of time.

Run:  python examples/arrow_of_time.py
"""

from typing import Iterable, Optional

from repro.baselines.common import BaselineConfig
from repro.baselines.ring import RingEngine
from repro.core.action import ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.report import Table
from repro.state.objects import WorldObject
from repro.types import ClientId, ObjectId
from repro.world.avatar import avatar_id, avatar_object
from repro.world.base import World
from repro.world.combat import ShootArrowAction
from repro.world.geometry import Vec2

VISIBILITY = 40.0
POSITIONS = {0: Vec2(0, 0), 1: Vec2(35, 0), 2: Vec2(70, 0)}
NAME = {0: "A", 1: "B", 2: "C"}
A, B, C = 0, 1, 2


class ArrowWorld(World):
    """Three stationary archers on a line."""

    def initial_objects(self) -> Iterable[WorldObject]:
        for index, position in POSITIONS.items():
            yield avatar_object(index, position, speed=0.0)

    def avatar_of(self, client_id: ClientId) -> Optional[ObjectId]:
        return avatar_id(client_id) if client_id in POSITIONS else None

    @property
    def max_speed(self) -> float:
        return 0.0

    def client_radius(self, client_id: ClientId) -> float:
        return VISIBILITY


def shot(shooter: int, target: int) -> ShootArrowAction:
    return ShootArrowAction(
        ActionId(shooter, 0),
        avatar_id(shooter),
        avatar_id(target),
        damage=100,
        position=POSITIONS[shooter],
        shot_range=VISIBILITY,
        cost_ms=1.0,
    )


def alive_on(store, who: int):
    oid = avatar_id(who)
    if oid not in store:
        return "?"
    return "alive" if store.get(oid)["alive"] else "DEAD"


def main() -> None:
    # --- RING ---------------------------------------------------------
    ring = RingEngine(ArrowWorld(), 3, BaselineConfig(rtt_ms=100.0),
                      visibility=VISIBILITY)
    ring.sim.schedule(0.0, lambda: ring.submit(C, shot(C, B)))
    ring.sim.schedule(40.0, lambda: ring.submit(B, shot(B, A)))
    ring.run()

    # --- SEVE ----------------------------------------------------------
    seve = SeveEngine(
        ArrowWorld(), 3,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0, seed_full_state=True),
    )
    seve.start(stop_at=10_000)
    seve.sim.schedule(0.0, lambda: seve.client(C).submit(shot(C, B)))
    seve.sim.schedule(40.0, lambda: seve.client(B).submit(shot(B, A)))
    seve.run(until=3_000)
    seve.run_to_quiescence()

    print("t=0ms   C shoots B (kill).  t=40ms  B shoots A.\n")
    table = Table(
        "Is archer A alive? (per replica)",
        ("replica", "RING", "SEVE"),
        note="causally, B died before loosing its arrow: A must live",
    )
    table.add_row(
        "server (authoritative)",
        alive_on(ring.state, A),
        alive_on(seve.state, A),
    )
    for cid in (A, B, C):
        ring_store = ring.clients[cid].store
        seve_store = seve.clients[cid].stable
        table.add_row(f"client {NAME[cid]}", alive_on(ring_store, A),
                      alive_on(seve_store, A))
    print(table.render())

    ring_a_dead = not ring.clients[A].store.get(avatar_id(A))["alive"]
    print(
        "\nRING: client A never saw C's shot, evaluated B's arrow against a\n"
        "stale world, and killed its own avatar"
        + (" — permanent divergence." if ring_a_dead else ".")
    )
    print(
        "SEVE: the server shipped C's shot inside the closure of B's shot;\n"
        "every replica agrees the arrow fizzled and A lives."
    )


if __name__ == "__main__":
    main()
