#!/usr/bin/env python3
"""Manhattan People: the paper's evaluation workload, configurable.

Runs any architecture on the Table I workload and prints the full
measurement record — response-time distribution, traffic, drops, CPU
utilisation, and the Theorem 1 consistency verdict.

Usage:
    python examples/manhattan_people.py [architecture] [clients] [walls]

    architecture: seve | seve-naive | seve-basic | incomplete |
                  central | broadcast | ring        (default: seve)
    clients: number of clients                      (default: 32)
    walls:   number of walls                        (default: 10000)
"""

import sys

from repro import SimulationSettings
from repro.harness.architectures import ARCHITECTURES, build_engine, build_world
from repro.harness.workload import MoveWorkload
from repro.metrics.consistency import ConsistencyChecker, check_uniform
from repro.metrics.report import Table


def main() -> None:
    architecture = sys.argv[1] if len(sys.argv) > 1 else "seve"
    num_clients = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    num_walls = int(sys.argv[3]) if len(sys.argv) > 3 else 10_000
    if architecture not in ARCHITECTURES:
        raise SystemExit(f"unknown architecture; pick one of {ARCHITECTURES}")

    settings = SimulationSettings(
        num_clients=num_clients,
        num_walls=num_walls,
        moves_per_client=50,
        seed=7,
    )
    world = build_world(settings)
    engine = build_engine(architecture, settings, world)
    workload = MoveWorkload(engine, world, settings)

    print(f"Running {architecture!r}: {world!r}")
    engine.start()
    workload.install()
    engine.run(until=settings.workload_duration_ms + 2 * settings.move_interval_ms)
    engine.run_to_quiescence()

    summary = engine.response_times.summary()
    meter = engine.network.meter

    table = Table(f"Manhattan People — {architecture}", ("metric", "value"))
    table.add_row("moves submitted", workload.stats.moves_submitted)
    table.add_row("stable responses", summary.count)
    table.add_row("mean response (ms)", summary.mean)
    table.add_row("p95 response (ms)", summary.p95)
    table.add_row("max response (ms)", summary.maximum)
    table.add_row("total traffic (KB)", meter.total_kb)
    table.add_row(
        "per-client traffic (KB)",
        sum(meter.host_bytes(c) for c in engine.clients) / max(1, len(engine.clients)) / 1024.0,
    )
    table.add_row("server CPU utilisation", f"{engine.server_host.utilization():.1%}")
    busiest = max(engine.clients.values(), key=lambda c: c.host.cpu_time_used)
    table.add_row("busiest client CPU", f"{busiest.host.utilization():.1%}")
    if hasattr(engine, "drop_percent"):
        table.add_row("moves dropped (%)", engine.drop_percent)

    replicas = {
        cid: (client.stable if hasattr(client, "stable") else client.store)
        for cid, client in engine.clients.items()
    }
    if architecture in ("seve-basic", "broadcast"):
        report = check_uniform(replicas)
    else:
        report = ConsistencyChecker(engine.state).check_all(replicas)
    table.add_row("consistency", report.summary())
    print(table.render())


if __name__ == "__main__":
    main()
