#!/usr/bin/env python3
"""Dining philosophers on the equator (Section III-E of the paper).

Every philosopher tries to grab both forks in the same instant.  The
direct conflicts are only ever pairwise, but the transitive closure of
conflicts wraps the entire ring — the paper's demonstration that the
closure of uncommitted actions is unbounded.

The Information Bound Model cuts the ring by dropping a few grabs
(actions whose conflict chain stretches past the threshold), which
bounds every surviving closure while committing the majority.

Run:  python examples/dining_philosophers.py [num_philosophers]
"""

import sys

from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.report import Table
from repro.world.philosophers import (
    FORK_FREE,
    PhilosophersConfig,
    PhilosophersWorld,
    fork_id,
    philosopher_id,
)


def run(num: int, threshold: float):
    world = PhilosophersWorld(num, PhilosophersConfig(spacing=10.0))
    engine = SeveEngine(
        world,
        num,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0, threshold=threshold),
    )
    engine.start(stop_at=20_000)
    # Everyone grabs at t=0 — the worst case.
    for cid in range(num):
        client = engine.client(cid)
        engine.sim.schedule(
            0.0,
            lambda c=client, cid=cid: c.submit(
                world.plan_grab(cid, c.next_action_id(), cost_ms=0.5)
            ),
        )
    engine.run(until=5_000)
    engine.run_to_quiescence()
    return world, engine


def describe(world, engine, num):
    state = engine.state
    eaters = [
        i for i in range(num) if state.get(philosopher_id(i))["state"] == "eating"
    ]
    hungry = [
        i for i in range(num) if state.get(philosopher_id(i))["state"] == "hungry"
    ]
    held_forks = sum(
        1 for i in range(num) if state.get(fork_id(i))["holder"] != FORK_FREE
    )
    return eaters, hungry, held_forks


def main() -> None:
    num = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    table = Table(
        f"Dining philosophers, {num} seats, simultaneous grabs",
        ("threshold", "dropped", "committed", "eating", "hungry", "forks_held"),
        note="threshold in world units; seats are 10 units apart on the ring",
    )
    for threshold in (15.0, 30.0, 1e9):
        world, engine = run(num, threshold)
        eaters, hungry, held = describe(world, engine, num)
        table.add_row(
            "unbounded" if threshold >= 1e9 else threshold,
            engine.total_dropped,
            engine.server.stats.actions_committed,
            len(eaters),
            len(hungry),
            held,
        )
    print(table.render())
    print(
        "\nWith a finite threshold the server drops the few grabs whose\n"
        "conflict chain stretches around the ring; everyone else's grab\n"
        "commits with a bounded closure. With an unbounded threshold all\n"
        "grabs commit, but every client's reply had to carry the whole\n"
        "ring's worth of actions — the unbounded-closure problem."
    )


if __name__ == "__main__":
    main()
