#!/usr/bin/env python3
"""Quickstart: run SEVE on a small Manhattan People world.

Builds a 16-client world, runs the full SEVE protocol (Incomplete World
+ First Bound pushes + Information Bound dropping) next to the Central
baseline, and prints response times, traffic, and the Theorem 1
consistency verdict.

Run:  python examples/quickstart.py
"""

from repro import SimulationSettings, run_simulation
from repro.metrics.report import Table


def main() -> None:
    settings = SimulationSettings(
        num_clients=16,
        num_walls=2_000,
        moves_per_client=30,
        seed=42,
    )
    print(
        f"World: {settings.world_width:g}x{settings.world_height:g}, "
        f"{settings.num_walls} walls, {settings.num_clients} clients, "
        f"{settings.moves_per_client} moves each @ "
        f"{settings.move_interval_ms:g} ms, RTT {settings.rtt_ms:g} ms\n"
    )

    table = Table(
        "SEVE vs Central (quickstart scale)",
        ("architecture", "mean_ms", "p95_ms", "KB/client", "drop_%", "consistent"),
    )
    for architecture in ("seve", "central", "broadcast"):
        result = run_simulation(architecture, settings)
        table.add_row(
            architecture,
            result.response.mean,
            result.response.p95,
            result.client_traffic_kb,
            result.drop_percent,
            "yes" if result.consistency and result.consistency.consistent else "NO",
        )
    print(table.render())
    print(
        "\nSEVE answers in ~(1+omega) x RTT with the server doing no game "
        "logic;\nat this small scale Central is latency-competitive — "
        "Figure 6 (benchmarks/bench_figure6.py) shows where that stops."
    )


if __name__ == "__main__":
    main()
