#!/usr/bin/env python3
"""Repo-root linter entry point: ``python scripts/lint.py [args...]``.

Thin wrapper over ``python -m repro.analysis`` (src need not be on
PYTHONPATH) that also applies the checked-in baseline
``scripts/lint_baseline.json`` by default when it exists.  Same flags
and exit codes as the module CLI — see docs/static_analysis.md.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402


def _argv() -> list:
    argv = sys.argv[1:]
    default_baseline = REPO_ROOT / "scripts" / "lint_baseline.json"
    if "--baseline" not in argv and default_baseline.exists():
        argv = [*argv, "--baseline", str(default_baseline)]
    if "--root" not in argv:
        argv = [*argv, "--root", str(REPO_ROOT)]
    return argv


if __name__ == "__main__":
    sys.exit(main(_argv()))
