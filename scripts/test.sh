#!/usr/bin/env bash
# Test driver: docs lint + doctests + fast tier-1 suite first, then the
# slow fault-injection matrix (docs/fault_model.md).
#
# Usage:
#   scripts/test.sh            everything: lint, doctests, fast suite,
#                              slow differentials, fault matrix
#   scripts/test.sh --fast     lint, doctests, fast suite (pre-commit gate)
#   scripts/test.sh --faults   fault matrix only (-m faults)
#
# The fault matrix replays degraded-network and churn scenarios (loss,
# jitter, duplication, crash/reconnect) across the architectures and
# takes several minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Documentation lint (links resolve; docs/index.md covers docs/*.md)
# and the executable examples embedded in docstrings.
lint_and_doctests() {
  python scripts/docs_lint.py
  python -m pytest -x -q --doctest-modules \
    src/repro/obs src/repro/metrics/report.py src/repro/net/stats.py \
    scripts/docs_lint.py
}

case "${1:-}" in
  --fast)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    ;;
  --faults)
    python -m pytest -x -q -m faults
    ;;
  *)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    python -m pytest -x -q -m "slow and not faults"
    python -m pytest -x -q -m faults
    ;;
esac
