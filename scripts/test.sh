#!/usr/bin/env bash
# Test driver: lints + doctests + fast tier-1 suite first, then the
# slow fault-injection matrix (docs/fault_model.md).
#
# Usage:
#   scripts/test.sh            everything: lints, doctests, fast suite,
#                              sharded + parallel + adversary smoke
#                              runs, the parallel-backend differential,
#                              slow differentials, fault matrix
#   scripts/test.sh --fast     lints, doctests, fast suite, parallel +
#                              adversary smoke (pre-commit gate)
#   scripts/test.sh --faults   fault matrix only (-m faults)
#
# The fault matrix replays degraded-network and churn scenarios (loss,
# jitter, duplication, crash/reconnect) across the architectures and
# takes several minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Static analysis (docs/static_analysis.md): the AST determinism
# linter — the simulation must be a pure function of its seeds, so
# wall-clock reads, unseeded RNGs, unsorted set/dict iteration, and
# id() ordering are banned from the library — plus the RW-set escape
# checker over every Action subclass (compute/apply must only touch
# declared object ids), the protocol conformance analyzer (every
# registered message has senders, a dispatch handler, a codec field
# encoder, and a decode path; conservation groups counted on both
# ends), and the schedule-permutation race smoke (the default
# scenarios under every permutation rule, ~1s).  The JSON mode is
# exercised too so the CI output format cannot rot.
static_analysis() {
  python scripts/lint.py --check determinism src/repro scripts examples
  python scripts/lint.py --check rwset src/repro/world examples
  python scripts/lint.py --check protocol
  python scripts/lint.py --check races
  python scripts/lint.py --check determinism --json src/repro \
    | python -c 'import json,sys; json.load(sys.stdin)'
}

# Documentation lint (links resolve; docs/index.md covers docs/*.md)
# and the executable examples embedded in docstrings.
lint_and_doctests() {
  static_analysis
  python scripts/docs_lint.py
  python -m pytest -x -q --doctest-modules \
    src/repro/obs src/repro/metrics/report.py src/repro/net/stats.py \
    src/repro/core/detection.py src/repro/core/elastic.py \
    scripts/docs_lint.py
}

# End-to-end smoke of the sharded deployment through the real CLI (the
# cross-shard audit runs inside and fails the exit code on violations).
sharded_smoke() {
  python -m repro run seve --clients 8 --walls 0 --moves 10 --shards 2 \
    --seed 7 >/dev/null
}

# Same run through the multiprocessing backend (docs/parallel.md): two
# spawned shard workers behind the CLI; exercises worker launch, the
# codec transport, bundle routing, and the merged audit/report path.
parallel_smoke() {
  python -m repro run seve --clients 8 --walls 0 --moves 10 --shards 2 \
    --backend parallel --seed 7 >/dev/null
}

# Adversary smoke (docs/adversary.md): three cheating clients on a
# sharded run through the real CLI — detection, quarantine, and the
# honest-survivor consistency gate all inside the exit code.
adversary_smoke() {
  python -m repro run seve --clients 8 --walls 0 --moves 8 --shards 2 \
    --adversary "forge:2,replay:3,lying-ws:4" --rwset-sanitizer \
    --seed 11 >/dev/null
}

# Elastic smoke (docs/elasticity.md): a K=4 run through the real CLI
# with the live rebalancer on an aggressive trigger — load reports,
# split/merge drains, and the cross-shard audit all inside the exit
# code.
elastic_smoke() {
  python -m repro run seve --clients 8 --walls 0 --moves 10 --shards 4 \
    --elastic --elastic-interval-ms 400 --elastic-threshold 1.5 \
    --seed 7 >/dev/null
}

# Crash-at-K smoke (docs/control_plane.md): a K=4 run through the real
# CLI on the multiprocessing backend with the replicated sequencer and
# a mid-run shard crash + restart — failover machinery, checkpoint+WAL
# recovery, the casualty rule, and the honest-survivor audits all
# inside the exit code.
controlplane_smoke() {
  python -m repro run seve --clients 12 --walls 60 --moves 8 --shards 4 \
    --backend parallel --control-plane replicated \
    --crash-plan 's2@1500:3500' --rtt-ms 150 --seed 13 >/dev/null
}

case "${1:-}" in
  --fast)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    parallel_smoke
    adversary_smoke
    elastic_smoke
    controlplane_smoke
    ;;
  --faults)
    python -m pytest -x -q -m faults
    ;;
  *)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    sharded_smoke
    parallel_smoke
    adversary_smoke
    elastic_smoke
    controlplane_smoke
    # Full parallel-vs-inproc differential (clean + lossy, K ∈ {1,2,4})
    python -m pytest -x -q tests/test_parallel_backend.py
    python -m pytest -x -q -m "slow and not faults"
    python -m pytest -x -q -m faults
    ;;
esac
