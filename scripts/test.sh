#!/usr/bin/env bash
# Test driver: lints + doctests + fast tier-1 suite first, then the
# slow fault-injection matrix (docs/fault_model.md).
#
# Usage:
#   scripts/test.sh            everything: lints, doctests, fast suite,
#                              sharded smoke run, slow differentials,
#                              fault matrix
#   scripts/test.sh --fast     lints, doctests, fast suite (pre-commit gate)
#   scripts/test.sh --faults   fault matrix only (-m faults)
#
# The fault matrix replays degraded-network and churn scenarios (loss,
# jitter, duplication, crash/reconnect) across the architectures and
# takes several minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Determinism lint: the simulation must be a pure function of its
# seeds, so wall-clock reads and unseeded RNGs are banned from the
# library (tests/benchmarks may use them).  Iterating a set literal is
# banned too: at these sizes order is insertion order in CPython, but
# relying on that is exactly the kind of thing that breaks replay.
determinism_lint() {
  local bad=0
  if grep -rn --include='*.py' -E 'time\.time\(\)|time\.monotonic\(\)' src/repro/; then
    echo 'determinism lint: wall-clock read in src/repro (use the simulator clock)' >&2
    bad=1
  fi
  if grep -rn --include='*.py' -E 'random\.(random|randint|choice|shuffle|uniform)\(' src/repro/; then
    echo 'determinism lint: module-level random.* call in src/repro (use a seeded Random)' >&2
    bad=1
  fi
  if grep -rn --include='*.py' -E 'random\.Random\(\)' src/repro/; then
    echo 'determinism lint: unseeded random.Random() in src/repro' >&2
    bad=1
  fi
  if grep -rn --include='*.py' -E 'for [A-Za-z_, ]+ in \{[^}:]*\}:' src/repro/; then
    echo 'determinism lint: iteration over a set literal in src/repro (order is not part of the language contract)' >&2
    bad=1
  fi
  return "$bad"
}

# Documentation lint (links resolve; docs/index.md covers docs/*.md)
# and the executable examples embedded in docstrings.
lint_and_doctests() {
  determinism_lint
  python scripts/docs_lint.py
  python -m pytest -x -q --doctest-modules \
    src/repro/obs src/repro/metrics/report.py src/repro/net/stats.py \
    scripts/docs_lint.py
}

# End-to-end smoke of the sharded deployment through the real CLI (the
# cross-shard audit runs inside and fails the exit code on violations).
sharded_smoke() {
  python -m repro run seve --clients 8 --walls 0 --moves 10 --shards 2 \
    --seed 7 >/dev/null
}

case "${1:-}" in
  --fast)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    ;;
  --faults)
    python -m pytest -x -q -m faults
    ;;
  *)
    lint_and_doctests
    python -m pytest -x -q -m "not slow"
    sharded_smoke
    python -m pytest -x -q -m "slow and not faults"
    python -m pytest -x -q -m faults
    ;;
esac
