#!/usr/bin/env bash
# Test driver: fast tier-1 suite first, then the slow fault-injection
# matrix (docs/fault_model.md).
#
# Usage:
#   scripts/test.sh            fast suite, then the fault matrix
#   scripts/test.sh --fast     fast suite only (deselects slow tests)
#   scripts/test.sh --faults   fault matrix only (-m faults)
#
# The fast suite is the pre-commit gate; the fault matrix replays
# degraded-network and churn scenarios (loss, jitter, duplication,
# crash/reconnect) across the architectures and takes several minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

case "${1:-}" in
  --fast)
    python -m pytest -x -q -m "not slow"
    ;;
  --faults)
    python -m pytest -x -q -m faults
    ;;
  *)
    python -m pytest -x -q -m "not slow"
    python -m pytest -x -q -m "slow and not faults"
    python -m pytest -x -q -m faults
    ;;
esac
