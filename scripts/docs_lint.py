#!/usr/bin/env python3
"""Documentation lint: link integrity, doc-map coverage, flag freshness.

Four checks, all cheap enough for every test run:

1. **Links resolve.**  Every relative markdown link in the repo's
   documentation (``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md``,
   ``ROADMAP.md``, ``CHANGES.md``, ``docs/*.md``) must point at a file
   or directory that exists.  Absolute URLs (``http://``/``https://``)
   and in-page anchors (``#...``) are skipped — we do not do network
   I/O in tests.
2. **The doc map is complete.**  Every file matching ``docs/*.md`` must
   be reachable from ``docs/index.md`` by following relative links, so
   a new document cannot silently miss the index.
3. **The doc-map table is exact.**  Both directions: every row of the
   ``docs/index.md`` doc-map table must point at an existing file
   under ``docs/``, and every ``docs/*.md`` (except the index itself)
   must have a row — reachability alone would let a document hide
   behind a transitive link without an entry describing it.
4. **Flags are real.**  Every ``--flag`` token the documentation
   mentions must either be defined by ``src/repro/cli.py`` or appear
   in the :data:`NON_CLI_FLAGS` allowlist of script/tool options, so
   a renamed or removed CLI argument cannot leave stale advice behind.

Exit status 0 when clean; 1 with one ``file: problem`` line per finding.

Run:  python scripts/docs_lint.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Top-level documents linted in addition to docs/*.md.
TOP_LEVEL_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: Inline markdown links: [text](target).  Images (![alt](target)) are
#: matched too — their targets must exist just the same.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks — links inside them are examples, not links.
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

#: Doc-map table rows in docs/index.md: lines whose first cell is a
#: markdown link to a document (the evolution table's rows lead with a
#: PR number, so only the doc-map table matches).
DOC_MAP_ROW_RE = re.compile(r"^\|\s*\[[^\]]+\]\(([^)\s]+\.md)\)", re.MULTILINE)

#: ``--flag`` tokens anywhere in a document, code fences included —
#: command examples are exactly the references that go stale.
FLAG_RE = re.compile(r"(?<![-\w])--[a-z][a-z0-9-]*")

#: Flags legitimately referenced by the documentation but not defined
#: in ``src/repro/cli.py``: options of scripts/lint.py, scripts/test.sh,
#: scripts/bench.sh, the benchmark drivers, pytest, and pip.
NON_CLI_FLAGS = frozenset({
    "--baseline",
    "--benchmark-only",
    "--check",
    "--fast",
    "--faults",
    "--help",
    "--json",
    "--no-build-isolation",
    "--paper-scale",
    "--quick",
    "--race-budget",
    "--race-shrink-budget",
    "--root",
    "--write-baseline",
})


def extract_links(text: str) -> list[str]:
    """All inline link targets in ``text``, code fences stripped.

    >>> extract_links("See [a](x.md) and ![img](y.png).")
    ['x.md', 'y.png']
    >>> extract_links("```\\n[not a link](skipped.md)\\n```")
    []
    """
    return LINK_RE.findall(FENCE_RE.sub("", text))


def is_checkable(target: str) -> bool:
    """Whether ``target`` is a relative path we can verify on disk.

    >>> is_checkable("../README.md")
    True
    >>> any(map(is_checkable, ["https://x.dev", "#anchor", "mailto:a@b"]))
    False
    """
    return not (
        "://" in target
        or target.startswith("#")
        or target.startswith("mailto:")
    )


def link_target_path(doc: pathlib.Path, target: str) -> pathlib.Path:
    """The filesystem path ``target`` points at, anchors stripped."""
    bare = target.split("#", 1)[0]
    return (doc.parent / bare).resolve()


def lint_links(docs: list[pathlib.Path]) -> list[str]:
    """``file: problem`` lines for every dangling relative link."""
    problems = []
    for doc in docs:
        for target in extract_links(doc.read_text()):
            if not is_checkable(target):
                continue
            if not link_target_path(doc, target).exists():
                rel = doc.relative_to(REPO_ROOT)
                problems.append(f"{rel}: dangling link ({target})")
    return problems


def lint_doc_map(docs_dir: pathlib.Path) -> list[str]:
    """``file: problem`` lines for docs/*.md unreachable from index.md."""
    index = docs_dir / "index.md"
    if not index.exists():
        return [f"{index.relative_to(REPO_ROOT)}: missing (the doc map)"]
    reachable = {index.resolve()}
    frontier = [index]
    while frontier:
        doc = frontier.pop()
        for target in extract_links(doc.read_text()):
            if not is_checkable(target):
                continue
            path = link_target_path(doc, target)
            if (
                path.suffix == ".md"
                and path.exists()
                and path not in reachable
            ):
                reachable.add(path)
                if docs_dir.resolve() in path.parents:
                    frontier.append(path)
    return [
        f"{doc.relative_to(REPO_ROOT)}: not reachable from docs/index.md"
        for doc in sorted(docs_dir.glob("*.md"))
        if doc.resolve() not in reachable
    ]


def doc_map_entries(index_text: str) -> list[str]:
    """Link targets of the doc-map table rows in ``index_text``.

    >>> doc_map_entries(
    ...     "| [a.md](a.md) | topic | when |\\n"
    ...     "|---|---|---|\\n"
    ...     "| 4 | evolution row | [a.md](a.md) |"
    ... )
    ['a.md']
    """
    return DOC_MAP_ROW_RE.findall(index_text)


def lint_doc_map_table(docs_dir: pathlib.Path) -> list[str]:
    """``file: problem`` lines for doc-map-table/``docs/*.md`` mismatches."""
    index = docs_dir / "index.md"
    if not index.exists():
        return []  # lint_doc_map already reports the missing index
    rel_index = index.relative_to(REPO_ROOT)
    problems = []
    listed = set()
    for target in doc_map_entries(index.read_text()):
        path = link_target_path(index, target)
        if path.exists():
            listed.add(path)
        else:
            problems.append(
                f"{rel_index}: doc-map entry points at missing file "
                f"({target})"
            )
    for doc in sorted(docs_dir.glob("*.md")):
        if doc.resolve() == index.resolve():
            continue
        if doc.resolve() not in listed:
            problems.append(
                f"{doc.relative_to(REPO_ROOT)}: missing from the "
                f"{rel_index} doc-map table"
            )
    return problems


def referenced_flags(text: str) -> list[str]:
    """All ``--flag`` tokens in ``text`` (fences included, dedup'd,
    sorted).

    >>> referenced_flags("Run with `--shards 4 --elastic`; a--b and "
    ...                  "|---| are not flags, --shards repeats.")
    ['--elastic', '--shards']
    """
    return sorted(set(FLAG_RE.findall(text)))


def cli_flags(cli_source: str) -> frozenset:
    """The long options ``src/repro/cli.py`` defines — every quoted
    ``"--..."`` literal (all of which are ``add_argument`` names).

    >>> sorted(cli_flags('p.add_argument("--shards", type=int)\\n'
    ...                  'q.add_argument("--elastic", action="x")'))
    ['--elastic', '--shards']
    """
    return frozenset(re.findall(r'"(--[a-z][a-z0-9-]*)"', cli_source))


def lint_flags(docs: list[pathlib.Path]) -> list[str]:
    """``file: problem`` lines for ``--flag`` mentions that are neither
    CLI arguments nor allowlisted script options."""
    known = cli_flags(
        (REPO_ROOT / "src" / "repro" / "cli.py").read_text()
    ) | NON_CLI_FLAGS
    problems = []
    for doc in docs:
        for flag in referenced_flags(doc.read_text()):
            if flag not in known:
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}: stale flag "
                    f"reference ({flag}) — not in repro/cli.py or the "
                    f"NON_CLI_FLAGS allowlist"
                )
    return problems


def main() -> int:
    docs_dir = REPO_ROOT / "docs"
    docs = [
        REPO_ROOT / name
        for name in TOP_LEVEL_DOCS
        if (REPO_ROOT / name).exists()
    ] + sorted(docs_dir.glob("*.md"))
    problems = (
        lint_links(docs)
        + lint_doc_map(docs_dir)
        + lint_doc_map_table(docs_dir)
        + lint_flags(docs)
    )
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs lint: {len(docs)} documents clean")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
