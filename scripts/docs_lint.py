#!/usr/bin/env python3
"""Documentation lint: link integrity and doc-map coverage.

Two checks, both cheap enough for every test run:

1. **Links resolve.**  Every relative markdown link in the repo's
   documentation (``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md``,
   ``ROADMAP.md``, ``CHANGES.md``, ``docs/*.md``) must point at a file
   or directory that exists.  Absolute URLs (``http://``/``https://``)
   and in-page anchors (``#...``) are skipped — we do not do network
   I/O in tests.
2. **The doc map is complete.**  Every file matching ``docs/*.md`` must
   be reachable from ``docs/index.md`` by following relative links, so
   a new document cannot silently miss the index.

Exit status 0 when clean; 1 with one ``file: problem`` line per finding.

Run:  python scripts/docs_lint.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Top-level documents linted in addition to docs/*.md.
TOP_LEVEL_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: Inline markdown links: [text](target).  Images (![alt](target)) are
#: matched too — their targets must exist just the same.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks — links inside them are examples, not links.
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def extract_links(text: str) -> list[str]:
    """All inline link targets in ``text``, code fences stripped.

    >>> extract_links("See [a](x.md) and ![img](y.png).")
    ['x.md', 'y.png']
    >>> extract_links("```\\n[not a link](skipped.md)\\n```")
    []
    """
    return LINK_RE.findall(FENCE_RE.sub("", text))


def is_checkable(target: str) -> bool:
    """Whether ``target`` is a relative path we can verify on disk.

    >>> is_checkable("../README.md")
    True
    >>> any(map(is_checkable, ["https://x.dev", "#anchor", "mailto:a@b"]))
    False
    """
    return not (
        "://" in target
        or target.startswith("#")
        or target.startswith("mailto:")
    )


def link_target_path(doc: pathlib.Path, target: str) -> pathlib.Path:
    """The filesystem path ``target`` points at, anchors stripped."""
    bare = target.split("#", 1)[0]
    return (doc.parent / bare).resolve()


def lint_links(docs: list[pathlib.Path]) -> list[str]:
    """``file: problem`` lines for every dangling relative link."""
    problems = []
    for doc in docs:
        for target in extract_links(doc.read_text()):
            if not is_checkable(target):
                continue
            if not link_target_path(doc, target).exists():
                rel = doc.relative_to(REPO_ROOT)
                problems.append(f"{rel}: dangling link ({target})")
    return problems


def lint_doc_map(docs_dir: pathlib.Path) -> list[str]:
    """``file: problem`` lines for docs/*.md unreachable from index.md."""
    index = docs_dir / "index.md"
    if not index.exists():
        return [f"{index.relative_to(REPO_ROOT)}: missing (the doc map)"]
    reachable = {index.resolve()}
    frontier = [index]
    while frontier:
        doc = frontier.pop()
        for target in extract_links(doc.read_text()):
            if not is_checkable(target):
                continue
            path = link_target_path(doc, target)
            if (
                path.suffix == ".md"
                and path.exists()
                and path not in reachable
            ):
                reachable.add(path)
                if docs_dir.resolve() in path.parents:
                    frontier.append(path)
    return [
        f"{doc.relative_to(REPO_ROOT)}: not reachable from docs/index.md"
        for doc in sorted(docs_dir.glob("*.md"))
        if doc.resolve() not in reachable
    ]


def main() -> int:
    docs_dir = REPO_ROOT / "docs"
    docs = [
        REPO_ROOT / name
        for name in TOP_LEVEL_DOCS
        if (REPO_ROOT / name).exists()
    ] + sorted(docs_dir.glob("*.md"))
    problems = lint_links(docs) + lint_doc_map(docs_dir)
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs lint: {len(docs)} documents clean")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
