#!/usr/bin/env bash
# Tier-1 tests + the push-path, parallel-backend, adversary, and
# elastic benchmarks.
#
# Runs the full test suite (differential/property tests included), then
# regenerates BENCH_pushpath.json, BENCH_parallel.json,
# BENCH_adversary.json, BENCH_elastic.json, and
# BENCH_controlplane.json (repo root + benchmarks/results/) so every
# PR leaves a fresh before/after perf record.  BENCH_parallel.json is
# the K in {1,2,4,8} x {inproc,parallel} real-core sweep of the
# multiprocessing shard backend; its >=2x-at-K=4 acceptance gate only
# applies on hosts with >= 4 cores.  BENCH_adversary.json records
# cheat-detection latency and blast radius across K in {1,2,4}, clean
# and lossy (docs/adversary.md).  BENCH_elastic.json records
# bottleneck-shard cost under a K=4 flash crowd with the live
# rebalancer off vs on, clean and lossy (docs/elasticity.md).
# BENCH_controlplane.json records the replicated sequencer's
# throughput parity with the shard-0 singleton and the failover outage
# after a permanent sequencer kill (docs/control_plane.md).
# BENCH_protocol.json records the protocol conformance toolchain:
# flow-graph size and finding count (must be zero) plus the race
# explorer's schedule/run counts (docs/static_analysis.md).
#
# Usage:  scripts/bench.sh [--quick]        (--quick: smaller end-to-end run)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

scripts/test.sh
python benchmarks/bench_wallclock.py "$@"
python benchmarks/bench_adversary.py "$@"
python benchmarks/bench_elastic.py "$@"
python benchmarks/bench_controlplane.py "$@"
python benchmarks/bench_protocol.py "$@"
