#!/usr/bin/env bash
# Tier-1 tests + the push-path wall-clock benchmark.
#
# Runs the full test suite (differential/property tests included), then
# regenerates BENCH_pushpath.json (repo root + benchmarks/results/) so
# every PR leaves a fresh before/after perf record.
#
# Usage:  scripts/bench.sh [--quick]        (--quick: smaller end-to-end run)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

scripts/test.sh
python benchmarks/bench_wallclock.py "$@"
