"""Shared fixtures for the test suite.

Everything here is deliberately small/fast: tiny worlds, few moves.
The full Table I scale lives in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.harness.config import SimulationSettings
from repro.net.host import Host
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.types import SERVER_ID
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


@pytest.fixture(autouse=True)
def _ambient_rwset_sanitizer():
    """Run every engine the suite builds under the RW-set sanitizer.

    Engines whose config leaves ``rwset_sanitizer`` unset defer to the
    process-wide ambient mode (docs/static_analysis.md), so setting it
    here turns every test run into a conformance check of the world's
    declared read/write sets — a lying action fails its test instead of
    silently diverging.  Tests that need the sanitizer off (e.g. the
    differential baseline) pass an explicit mode.
    """
    from repro.analysis.sanitizer import set_ambient_mode

    previous = set_ambient_mode("raise")
    try:
        yield
    finally:
        set_ambient_mode(previous)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, rtt_ms=100.0, bandwidth_bps=None)


@pytest.fixture
def server_host(sim: Simulator) -> Host:
    return Host(sim, SERVER_ID)


@pytest.fixture
def small_world() -> ManhattanWorld:
    config = ManhattanConfig(
        width=200.0,
        height=200.0,
        num_walls=50,
        spawn="cluster",
        spawn_extent=60.0,
        seed=7,
    )
    return ManhattanWorld(8, config)


@pytest.fixture
def small_settings() -> SimulationSettings:
    return SimulationSettings(
        num_clients=6,
        num_walls=100,
        moves_per_client=8,
        spawn_extent=60.0,
        world_width=200.0,
        world_height=200.0,
        seed=3,
    )
