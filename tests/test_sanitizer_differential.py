"""Differential proof of the sanitizer's zero-interference contract: a
run with the RW-set sanitizer enabled must be byte-identical, in every
deterministic output, to the same run without it
(docs/static_analysis.md).

The sanitizer only *observes* — it changes no return values, schedules
no events, draws no randomness — so enabling it may not move a single
measurement.  Compared exactly as in tests/test_obs_differential.py:
every deterministic RunResult field plus the rendered report as bytes.
The lossy variant repeats the check under fault injection, and the
sharded variant proves the wrap covers shard-attached clients too.
"""

from __future__ import annotations

import pytest

from repro.harness.config import SimulationSettings
from repro.harness.runner import RunResult, run_simulation
from repro.metrics.report import Table
from repro.net.faults import FaultPlan

SETTINGS = SimulationSettings(
    num_clients=10,
    num_walls=200,
    moves_per_client=8,
    world_width=300.0,
    world_height=300.0,
    spawn="cluster",
    spawn_extent=100.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=250.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
)

LOSSY_SETTINGS = SETTINGS.with_(
    fault_plan=FaultPlan(
        loss_rate=0.08, jitter_ms=30.0, duplicate_rate=0.03, seed=5
    )
)


def _fingerprint(result: RunResult) -> dict:
    """Every deterministic (virtual-time) field of a RunResult."""
    return {
        "response": result.response,
        "total_traffic_kb": result.total_traffic_kb,
        "client_traffic_kb": result.client_traffic_kb,
        "server_traffic_kb": result.server_traffic_kb,
        "drop_percent": result.drop_percent,
        "avg_visible": result.avg_visible,
        "avg_move_cost_ms": result.avg_move_cost_ms,
        "virtual_ms": result.virtual_ms,
        "events": result.events,
        "moves_submitted": result.moves_submitted,
        "responses_observed": result.responses_observed,
        "total_cpu_ms": result.total_cpu_ms,
        "closure_cpu_ms": result.closure_cpu_ms,
        "messages_dropped": result.messages_dropped,
        "messages_duplicated": result.messages_duplicated,
        "retransmissions": result.retransmissions,
        "clients_evicted": result.clients_evicted,
        "rwset_violations": result.rwset_violations,
        "consistent": (
            None if result.consistency is None else result.consistency.summary()
        ),
    }


def _report_bytes(result: RunResult) -> bytes:
    table = Table(f"report — {result.architecture}", ("metric", "value"))
    for name, value in _fingerprint(result).items():
        table.add_row(name, value)
    return table.render().encode()


def _run_pair(architecture: str, settings: SimulationSettings):
    off = run_simulation(architecture, settings.with_(rwset_sanitizer="off"))
    on = run_simulation(architecture, settings.with_(rwset_sanitizer="raise"))
    return off, on


@pytest.mark.parametrize("architecture", ["seve", "incomplete"])
def test_sanitized_run_is_byte_identical_to_unsanitized(architecture):
    off, on = _run_pair(architecture, SETTINGS)
    assert _fingerprint(off) == _fingerprint(on)
    assert _report_bytes(off) == _report_bytes(on)
    assert off.moves_submitted > 0  # not vacuous


def test_sanitized_sharded_run_is_byte_identical():
    sharded = SETTINGS.with_(shards=2)
    off, on = _run_pair("seve", sharded)
    assert _fingerprint(off) == _fingerprint(on)
    assert _report_bytes(off) == _report_bytes(on)
    assert off.shard_rows is not None and len(off.shard_rows) == 2


@pytest.mark.slow
@pytest.mark.faults
def test_sanitized_lossy_run_is_byte_identical():
    off, on = _run_pair("seve", LOSSY_SETTINGS)
    assert _fingerprint(off) == _fingerprint(on)
    assert _report_bytes(off) == _report_bytes(on)
    # The degraded network really exercised the recovery machinery
    # while every recovered apply was being checked.
    assert on.retransmissions > 0
