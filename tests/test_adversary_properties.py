"""Property tests of the adversarial client models and the server-side
cheat-detection/quarantine layer (docs/adversary.md):

1. **Detection** — every model x backend cell is caught by one of the
   detectors documented for that model, within a bounded number of
   round trips of the first cheating submission.
2. **Quarantine** — exactly the planned cheater is evicted; honest
   clients keep running and still pass the Theorem 1 consistency sweep.
3. **Attribution** — every detection record names the cheater; honest
   clients are never flagged (the equivocation screen silently drops
   ambiguous conflicts rather than guessing).
4. **Blast radius zero** — a ``forge`` cheater is rejected before any
   server-side burn, so the honest committed state is byte-identical to
   a run where the cheater never submitted at all.
5. **Plan algebra** — :class:`AdversaryPlan` canonicalization, the CLI
   plan syntax, and cross-process (pickle) round-trips.
"""

from __future__ import annotations

import pickle

import pytest

from repro.adversary import (
    ADVERSARY_MODELS,
    AdversaryPlan,
    parse_adversary_plan,
)
from repro.errors import ConfigurationError
from repro.harness.architectures import build_engine, build_world
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload

#: The client every plan in this module corrupts.
CHEATER = 2

BASE = SimulationSettings(
    num_clients=6,
    num_walls=0,
    moves_per_client=8,
    world_width=200.0,
    world_height=200.0,
    spawn_extent=20.0,
    seed=11,
    rwset_sanitizer="raise",
)

#: Backend label -> (architecture, settings overrides).
BACKENDS = {
    "basic": ("seve-basic", {}),
    "incomplete": ("incomplete", {}),
    "sharded": ("seve", {"shards": 2}),
    "parallel": ("seve", {"shards": 2, "backend": "parallel"}),
}

#: Which detectors may legitimately fire first for each model.  Several
#: models race two detectors: a lying/nondeterministic completion from
#: the cheater trips ``ws-conformance``/``plausibility`` when the
#: cheater's own report is screened, but ``equivocation`` when an honest
#: witness's conforming report was recorded first and the cheater's
#: divergent one arrives as a conflicting claim.  Either way the cheat
#: is caught and attributed to the same client, so the tests accept the
#: set.  ``lying-rs`` likewise lands as replica ``evidence`` in dense
#: worlds (see ``test_lying_rs_evidence_in_dense_world``) but as the
#: admission-time ``malformed`` screen when the replica knows no
#: neighbours yet and the under-declaration degenerates to dropping the
#: avatar's own read.
ALLOWED_DETECTORS = {
    "lying-rs": {"evidence", "malformed"},
    "lying-ws": {"breach", "ws-conformance", "equivocation"},
    "nondet": {"breach", "plausibility", "equivocation"},
    "replay": {"replay"},
    "forge": {"forgery"},
    "equivocate": {"breach", "equivocation"},
}


def _plan(model: str) -> AdversaryPlan:
    return AdversaryPlan(assignments=((model, (CHEATER,)),), seed=0)


def _settings(backend: str, model: str, **overrides) -> SimulationSettings:
    _, extra = BACKENDS[backend]
    return BASE.with_(adversary=_plan(model), **{**extra, **overrides})


def _cell_params():
    for model in ADVERSARY_MODELS:
        for backend in BACKENDS:
            marks = (pytest.mark.slow,) if backend == "parallel" else ()
            yield pytest.param(model, backend, id=f"{model}-{backend}",
                               marks=marks)


@pytest.mark.parametrize("model,backend", _cell_params())
def test_detected_quarantined_and_honest_state_intact(model, backend):
    """Every model x backend cell: detection by an allowed detector
    within a bounded window, quarantine of exactly the cheater, and an
    honest-replica consistency sweep that still passes."""
    architecture, _ = BACKENDS[backend]
    settings = _settings(backend, model)
    result = run_simulation(architecture, settings)

    assert result.detector_counts, (
        f"{model} went undetected on {backend}"
    )
    fired = set(result.detector_counts)
    assert fired <= ALLOWED_DETECTORS[model], (
        f"{model} on {backend} tripped unexpected detectors {fired}"
    )
    assert result.cheats_detected >= 1
    assert result.clients_quarantined == (CHEATER,)
    for record in result.detection_records:
        assert record.client_id == CHEATER
    if model == "forge":
        # Forged submissions are rejected at admission, before any
        # write target is accepted: zero server-side footprint.
        assert result.blast_radius == {CHEATER: 0}

    # Detection is prompt: all six models cheat from their very first
    # move, so the first flag must land within a couple of round trips
    # of the first submission (completion screens need the commit echo,
    # hence the second RTT; one extra interval absorbs phase offsets).
    bound_ms = 2 * settings.rtt_ms + 2 * settings.move_interval_ms
    first = min(record.at_ms for record in result.detection_records)
    assert first <= bound_ms

    # The honest survivors still satisfy Theorem 1.
    assert result.consistency is not None
    assert result.consistency.consistent


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_workload_completes_for_honest_clients(backend):
    """Quarantine stops the cheater's workload without starving the
    honest clients: they still submit their full move budget."""
    architecture, _ = BACKENDS[backend]
    settings = _settings(backend, "forge")
    result = run_simulation(architecture, settings)
    honest = settings.num_clients - 1
    assert result.moves_submitted >= honest * settings.moves_per_client


def test_lying_rs_evidence_in_dense_world():
    """In a world dense enough that replicas know their neighbours, the
    lying-rs model under-declares a *shared* read and is caught by the
    replica-side ``evidence`` detector (sanitizer attribution), not the
    admission screen."""
    settings = BASE.with_(adversary=_plan("lying-rs"), spawn_extent=6.0)
    result = run_simulation("seve-basic", settings)
    assert "evidence" in (result.detector_counts or {})
    assert result.clients_quarantined == (CHEATER,)


def _committed_state(engine) -> dict:
    state = engine.state
    return {oid: state.values_of([oid])[oid] for oid in sorted(state.ids())}


def _honest_replica_states(engine) -> dict:
    return {
        client_id: {
            oid: client.stable.values_of([oid])[oid]
            for oid in sorted(client.stable.ids())
        }
        for client_id, client in engine.clients.items()
        if client_id != CHEATER
    }


@pytest.mark.slow
def test_forge_blast_radius_zero():
    """A forged submission is rejected before burning any server CPU or
    touching any state: committed state and every honest replica are
    byte-identical to a run where the cheater never submitted at all.

    Both runs pin ``fault_tolerant=True`` (adversarial runs force it),
    so the only difference is the forger's rejected traffic.
    """

    def final_engine(adversary, silence_cheater):
        settings = BASE.with_(adversary=adversary, fault_tolerant=True)
        world = build_world(settings)
        engine = build_engine("incomplete", settings, world)
        workload = MoveWorkload(engine, world, settings)
        if getattr(engine, "detector", None) is not None:
            engine.on_quarantine = workload.stop_client
        engine.start()
        workload.install()
        if silence_cheater:
            workload.stop_client(CHEATER)
        horizon = (
            settings.workload_duration_ms + 2 * settings.move_interval_ms
        )
        engine.run(until=horizon)
        engine.run_to_quiescence(max_extra_ms=settings.drain_ms)
        return engine

    forged = final_engine(_plan("forge"), silence_cheater=False)
    silent = final_engine(None, silence_cheater=True)

    assert forged.detector.counts.get("forgery")
    assert sorted(forged.quarantined) == [CHEATER]
    assert _committed_state(forged) == _committed_state(silent)
    assert _honest_replica_states(forged) == _honest_replica_states(silent)


# -- plan algebra ---------------------------------------------------------


def test_plan_canonicalization_and_lookup():
    plan = AdversaryPlan(
        assignments=(("forge", (5, 3)), ("lying-ws", (1,))), seed=7
    )
    assert plan.assignments == (("forge", (3, 5)), ("lying-ws", (1,)))
    assert plan.client_ids == (1, 3, 5)
    assert plan.model_of(3) == "forge"
    assert plan.model_of(1) == "lying-ws"
    assert plan.model_of(0) is None
    assert not plan.is_null


def test_null_plan():
    assert AdversaryPlan(seed=99).is_null
    assert AdversaryPlan().client_ids == ()


def test_plan_rejects_bad_assignments():
    with pytest.raises(ConfigurationError):
        AdversaryPlan(assignments=(("teleport", (1,)),))
    with pytest.raises(ConfigurationError):
        AdversaryPlan(assignments=(("forge", (-1,)),))
    with pytest.raises(ConfigurationError):
        AdversaryPlan(
            assignments=(("forge", (1,)), ("replay", (1,)))
        )


def test_plan_pickle_round_trip():
    plan = AdversaryPlan(assignments=(("replay", (0, 4)),), seed=3)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.model_of(4) == "replay"


def test_parse_adversary_plan():
    parsed = parse_adversary_plan("lying-rs:1,forge:2+4,lying-ws:3")
    assert parsed == (
        ("lying-rs", (1,)),
        ("forge", (2, 4)),
        ("lying-ws", (3,)),
    )
    # The plan canonicalizes (model-sorted) whatever order the flag used.
    assert AdversaryPlan(assignments=parsed).assignments == (
        ("forge", (2, 4)),
        ("lying-rs", (1,)),
        ("lying-ws", (3,)),
    )
    assert parse_adversary_plan("") == ()
    with pytest.raises(ConfigurationError):
        parse_adversary_plan("forge")
    with pytest.raises(ConfigurationError):
        parse_adversary_plan("forge:x")
    # Model names are validated by the plan itself, not the parser.
    with pytest.raises(ConfigurationError):
        AdversaryPlan(assignments=parse_adversary_plan("warp:1"))
