"""Unit tests for protocol message sizing, report tables, types helpers,
and the interest-class rules."""

from __future__ import annotations

import pytest

from repro.core.action import ActionId, ActionResult, BlindWrite
from repro.core.interest import DEFAULT_CLASS, classes_of, is_consequential, profile
from repro.core.messages import (
    AbortNotice,
    ActionBatch,
    Completion,
    OrderedAction,
    RelayedAction,
    StateUpdate,
    SubmitAction,
    wire_size,
)
from repro.metrics.report import Table, format_table, series_table
from repro.types import SERVER_ID, oid, oid_index, oid_kind


def blind(n_objects=1, n_attrs=1):
    return BlindWrite.from_server(
        0,
        {
            f"o:{i}": {f"a{j}": j for j in range(n_attrs)}
            for i in range(n_objects)
        },
    )


# ---------------------------------------------------------------------------
# wire sizes
# ---------------------------------------------------------------------------
def test_submit_size_wraps_action():
    action = blind()
    assert wire_size(SubmitAction(action)) == 16 + action.wire_size()


def test_batch_size_sums_entries():
    action = blind()
    batch = ActionBatch((OrderedAction(0, action), OrderedAction(1, action)))
    assert wire_size(batch) == 16 + 2 * (8 + action.wire_size())


def test_completion_size_scales_with_result():
    small = Completion(0, ActionId(0, 0), ActionResult.of({"o:0": {"x": 1}}))
    big = Completion(0, ActionId(0, 0), ActionResult.of({"o:0": {"x": 1, "y": 2}}))
    assert wire_size(big) == wire_size(small) + 12


def test_abort_notice_fixed_size():
    assert wire_size(AbortNotice(ActionId(0, 0))) == 24


def test_state_update_size():
    update = StateUpdate(ActionResult.of({"o:0": {"x": 1}}).written)
    assert wire_size(update) == 24 + 8 + 12


def test_relayed_action_size():
    action = blind()
    assert wire_size(RelayedAction(action)) == 24 + action.wire_size()


def test_unknown_message_type_rejected():
    with pytest.raises(TypeError):
        wire_size("not a message")


# ---------------------------------------------------------------------------
# interest classes
# ---------------------------------------------------------------------------
def test_profile_always_includes_default():
    assert DEFAULT_CLASS in profile("insect")
    assert profile() == frozenset({DEFAULT_CLASS})


def test_is_consequential_rules():
    assert is_consequential("anything", None)
    assert is_consequential(DEFAULT_CLASS, profile("human"))
    assert is_consequential("human", profile("human"))
    assert not is_consequential("insect", profile("human"))


def test_classes_of():
    actions = [blind(), blind()]
    actions[0].interest_class = "combat"
    assert classes_of(actions) == frozenset({"combat", DEFAULT_CLASS})


# ---------------------------------------------------------------------------
# types helpers
# ---------------------------------------------------------------------------
def test_oid_helpers():
    assert oid("avatar", 3) == "avatar:3"
    assert oid_kind("wall:17") == "wall"
    assert oid_index("wall:17") == 17
    assert SERVER_ID == -1


# ---------------------------------------------------------------------------
# report tables
# ---------------------------------------------------------------------------
def test_table_rendering_aligns_and_formats():
    table = Table("Demo", ("name", "value"), note="a note")
    table.add_row("alpha", 1234.5678)
    table.add_row("b", None)
    text = table.render()
    assert "Demo" in text
    assert "1,235" in text  # thousands formatting
    assert "n/a" in text
    assert "note: a note" in text


def test_table_wrong_arity_rejected():
    table = Table("Demo", ("a", "b"))
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_float_precision_rules():
    table = Table("Demo", ("v",))
    table.add_row(3.14159)
    table.add_row(42.123)
    text = table.render()
    assert "3.14" in text
    assert "42.1" in text


def test_empty_table_renders_headers():
    table = Table("Empty", ("col",))
    assert "col" in table.render()


def test_nan_rendered_as_na():
    table = Table("Demo", ("v",))
    table.add_row(float("nan"))
    assert "n/a" in table.render()


def test_series_table_builder():
    table = series_table(
        "Fig", "x", [1, 2], {"a": [10.0, 20.0], "b": [30.0, 40.0]}
    )
    assert table.columns == ["x", "a", "b"]
    assert table.rows == [[1, 10.0, 30.0], [2, 20.0, 40.0]]
    assert format_table(table)
