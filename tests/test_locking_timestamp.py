"""Tests for the Section II-B protocol baselines: the lock table, the
distributed-locking engine, and the timestamp-certification engine."""

from __future__ import annotations

import pytest

from repro.baselines.common import BaselineConfig
from repro.baselines.locking import LockingEngine
from repro.baselines.timestamp import TimestampEngine
from repro.core.action import ActionId
from repro.errors import ProtocolError
from repro.state.locks import LockTable
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


# ---------------------------------------------------------------------------
# LockTable
# ---------------------------------------------------------------------------
def test_exclusive_blocks_exclusive():
    table = LockTable()
    order = []
    assert table.acquire("a", shared=frozenset(), exclusive=frozenset({"x"}),
                         on_granted=lambda: order.append("a"))
    assert not table.acquire("b", shared=frozenset(), exclusive=frozenset({"x"}),
                             on_granted=lambda: order.append("b"))
    assert order == ["a"]
    table.release("a")
    assert order == ["a", "b"]
    assert table.holds("b")


def test_shared_locks_coexist():
    table = LockTable()
    grants = []
    for name in ("a", "b", "c"):
        assert table.acquire(name, shared=frozenset({"x"}), exclusive=frozenset(),
                             on_granted=lambda name=name: grants.append(name))
    assert grants == ["a", "b", "c"]
    assert table.reader_count("x") == 3


def test_shared_blocks_exclusive_and_vice_versa():
    table = LockTable()
    table.acquire("r", shared=frozenset({"x"}), exclusive=frozenset(),
                  on_granted=lambda: None)
    assert not table.acquire("w", shared=frozenset(), exclusive=frozenset({"x"}),
                             on_granted=lambda: None)
    table.release("r")
    assert table.holds("w")
    assert not table.acquire("r2", shared=frozenset({"x"}), exclusive=frozenset(),
                             on_granted=lambda: None)


def test_all_or_nothing_granting():
    table = LockTable()
    table.acquire("a", shared=frozenset(), exclusive=frozenset({"x"}),
                  on_granted=lambda: None)
    granted = []
    # Needs x and y; x is taken -> must wait even though y is free.
    table.acquire("b", shared=frozenset(), exclusive=frozenset({"x", "y"}),
                  on_granted=lambda: granted.append("b"))
    assert granted == []
    assert table.writer_of("y") is None  # y not partially held
    table.release("a")
    assert granted == ["b"]
    assert table.writer_of("y") == "b"


def test_waiters_may_overtake_incompatible_ones():
    table = LockTable()
    table.acquire("a", shared=frozenset(), exclusive=frozenset({"x"}),
                  on_granted=lambda: None)
    granted = []
    table.acquire("b", shared=frozenset(), exclusive=frozenset({"x"}),
                  on_granted=lambda: granted.append("b"))
    # c wants an unrelated object: grants immediately despite b waiting.
    assert table.acquire("c", shared=frozenset(), exclusive=frozenset({"y"}),
                         on_granted=lambda: granted.append("c"))
    assert granted == ["c"]


def test_object_in_both_sets_is_exclusive():
    table = LockTable()
    table.acquire("rmw", shared=frozenset({"x"}), exclusive=frozenset({"x"}),
                  on_granted=lambda: None)
    assert table.writer_of("x") == "rmw"
    assert table.reader_count("x") == 0


def test_double_acquire_and_bad_release_raise():
    table = LockTable()
    table.acquire("a", shared=frozenset(), exclusive=frozenset({"x"}),
                  on_granted=lambda: None)
    with pytest.raises(ProtocolError):
        table.acquire("a", shared=frozenset(), exclusive=frozenset({"y"}),
                      on_granted=lambda: None)
    with pytest.raises(ProtocolError):
        table.release("ghost")


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------
def make_world(num=4, **kwargs):
    defaults = dict(width=200.0, height=200.0, num_walls=10,
                    spawn="cluster", spawn_extent=30.0, seed=13)
    defaults.update(kwargs)
    return ManhattanWorld(num, ManhattanConfig(**defaults))


def drive(engine, world, moves=4, interval=400.0, cost=1.0):
    seqs = {cid: 0 for cid in engine.clients}
    for cid in engine.clients:
        def submit(cid=cid, n={"left": moves}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            action = world.plan_move(
                engine.planning_store(cid), cid, ActionId(cid, seqs[cid]),
                cost_ms=cost,
            )
            seqs[cid] += 1
            engine.submit(cid, action)

        engine.sim.call_every(interval, submit, start_delay=3.0 + 7 * cid,
                              stop_at=interval * (moves + 2))
    engine.run(until=interval * (moves + 2))
    engine.run_to_quiescence()


def test_locking_confirms_all_moves():
    world = make_world()
    engine = LockingEngine(world, 4, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world)
    assert engine.response_times.summary().count == 16
    assert engine.stats.effects_broadcast == 16
    assert engine.locks.waiting_count == 0


def test_locking_takes_two_round_trips():
    world = make_world(num=1)
    engine = LockingEngine(world, 1, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=3)
    summary = engine.response_times.summary()
    # 2 x RTT + execution + server costs: strictly above 200ms.
    assert summary.minimum > 200.0
    assert summary.mean < 230.0


def test_locking_contention_serializes():
    # Dense world: everyone's moves conflict (read each other's avatars).
    world = make_world(num=6, spawn_extent=8.0)
    engine = LockingEngine(world, 6, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=3, interval=300.0)
    assert engine.stats.queued_grants > 0  # locks actually conflicted
    assert engine.response_times.summary().count == 18


def test_locking_replicas_stay_consistent():
    world = make_world(num=5, spawn_extent=8.0)
    engine = LockingEngine(world, 5, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=4, interval=350.0)
    from repro.metrics.consistency import ConsistencyChecker

    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert report.consistent, report.violations[:3]


def test_timestamp_commits_without_contention():
    # Far-apart avatars: reads never conflict, everything commits first try.
    world = make_world(num=3, spawn_extent=180.0, seed=3)
    engine = TimestampEngine(world, 3, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=4)
    assert engine.stats.aborted == 0
    assert engine.response_times.summary().count == 12
    # One round trip + evaluation.
    assert engine.response_times.summary().mean < 150.0


def test_timestamp_aborts_under_contention():
    # Tight cluster: everyone reads everyone -> version checks fail often.
    world = make_world(num=8, spawn_extent=6.0)
    engine = TimestampEngine(world, 8, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=5, interval=250.0, cost=2.0)
    assert engine.stats.aborted > 0
    assert engine.abort_rate > 0.05
    # Some transactions make it through the abort storm, but contention
    # devastates throughput — the paper's criticism of syntactic
    # validation ("any change in the read set ... would potentially
    # cause the transaction to abort") in its extreme form.
    assert engine.stats.committed >= 5
    assert engine.abort_rate > 0.3


def test_timestamp_tentative_execution_does_not_dirty_replica():
    world = make_world(num=2, spawn_extent=180.0, seed=3)
    engine = TimestampEngine(world, 2, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    client = engine.clients[0]
    before = client.store.snapshot()
    action = world.plan_move(client.store, 0, ActionId(0, 0), cost_ms=1.0)
    engine.submit(0, action)
    # Run only until the certify message would be on the wire: the local
    # replica must still be unchanged (writes wait for the verdict).
    engine.sim.run(until=50.0)
    assert client.store.diff(before) == {}
    engine.run_to_quiescence()
    assert client.store.diff(before) != {}  # committed now


def test_timestamp_committed_replicas_consistent():
    world = make_world(num=6, spawn_extent=10.0)
    engine = TimestampEngine(world, 6, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None))
    drive(engine, world, moves=4, interval=350.0)
    from repro.metrics.consistency import ConsistencyChecker

    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert report.consistent, report.violations[:3]


def test_factory_builds_new_architectures(small_settings):
    from repro.harness.architectures import build_engine, build_world

    world = build_world(small_settings)
    locking = build_engine("locking", small_settings, world)
    timestamp = build_engine("timestamp", small_settings, world)
    assert isinstance(locking, LockingEngine)
    assert isinstance(timestamp, TimestampEngine)


def test_runner_supports_new_architectures(small_settings):
    from repro.harness.runner import run_simulation

    for architecture in ("locking", "timestamp"):
        result = run_simulation(architecture, small_settings)
        assert result.responses_observed > 0
        assert result.consistency is not None and result.consistency.consistent
