"""Tests for the First Bound push mode internals: dedup via sent-sets,
interest filtering vs closure delivery, and push batching."""

from __future__ import annotations

import pytest

from repro.core.action import Action, ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.core.interest import profile
from repro.state.objects import WorldObject
from repro.types import ClientId, ObjectId
from repro.world.avatar import avatar_id, avatar_object
from repro.world.base import World
from repro.world.geometry import Vec2


class PairWorld(World):
    """Two avatars standing close together, plus a shared token object."""

    def initial_objects(self):
        yield avatar_object(0, Vec2(10, 10), speed=0.0)
        yield avatar_object(1, Vec2(14, 10), speed=0.0)
        yield WorldObject("token:0", {"value": 0})

    def avatar_of(self, client_id: ClientId):
        return avatar_id(client_id) if client_id in (0, 1) else None

    @property
    def max_speed(self) -> float:
        return 0.0

    def client_radius(self, client_id: ClientId) -> float:
        return 20.0


class TokenAction(Action):
    """Increment the shared token (optionally tagged with a class)."""

    def __init__(self, action_id, *, position, interest_class="default",
                 extra_reads=frozenset()):
        super().__init__(
            action_id,
            reads=frozenset({"token:0"}) | extra_reads,
            writes=frozenset({"token:0"}),
            position=position,
            radius=1.0,
            cost_ms=0.5,
        )
        self.interest_class = interest_class

    def compute(self, store):
        return {"token:0": {"value": int(store.get("token:0")["value"]) + 1}}


class ReadTokenAction(Action):
    """Write own avatar based on the token (creates the dependency)."""

    def __init__(self, action_id, avatar_oid, *, position):
        super().__init__(
            action_id,
            reads=frozenset({avatar_oid, "token:0"}),
            writes=frozenset({avatar_oid}),
            position=position,
            radius=1.0,
            cost_ms=0.5,
        )
        self.avatar_oid = avatar_oid

    def compute(self, store):
        token = int(store.get("token:0")["value"])
        return {self.avatar_oid: {"bumps": token}}


def make_engine(interests=None):
    world = PairWorld()
    engine = SeveEngine(
        world, 2,
        SeveConfig(mode="first-bound", rtt_ms=100.0, tick_ms=20.0),
        interests=interests,
    )
    engine.start(stop_at=30_000)
    return world, engine


def test_pushes_never_duplicate_entries():
    world, engine = make_engine()
    client0 = engine.client(0)
    client1 = engine.client(1)
    for i in range(5):
        engine.sim.schedule(
            10.0 + i * 40.0,
            lambda i=i: client0.submit(
                TokenAction(client0.next_action_id(), position=Vec2(10, 10))
            ),
        )
        engine.sim.schedule(
            25.0 + i * 40.0,
            lambda i=i: client1.submit(
                TokenAction(client1.next_action_id(), position=Vec2(14, 10))
            ),
        )
    engine.run(until=2_000)
    engine.run_to_quiescence()
    # The clients are within each other's radius: both saw all 10
    # actions exactly once (duplicate delivery raises in the client).
    assert client0.stats.stable_evaluations == 10
    assert client1.stats.stable_evaluations == 10
    assert engine.state.get("token:0")["value"] == 10


def test_interest_filter_skips_uninteresting_pushes():
    # Client 1 subscribes only to "human"; client 0 emits "insect".
    world, engine = make_engine(
        interests={1: profile("human")}
    )
    client0 = engine.client(0)
    client1 = engine.client(1)
    client0.submit(
        TokenAction(client0.next_action_id(), position=Vec2(10, 10),
                    interest_class="insect")
    )
    engine.run(until=1_000)
    engine.run_to_quiescence()
    # Client 1 never evaluated the insect action.
    assert client1.stats.stable_evaluations == 0


def test_closure_overrides_interest_filter():
    """An uninteresting action that transitively affects an interesting
    one MUST still be delivered — interest filtering prunes candidates,
    never closures, or Theorem 1 would fail like RING does."""
    world, engine = make_engine(interests={1: profile("human")})
    client0 = engine.client(0)
    client1 = engine.client(1)
    # Step 1: an insect-class write to the token (filtered for client 1).
    client0.submit(
        TokenAction(client0.next_action_id(), position=Vec2(10, 10),
                    interest_class="insect")
    )
    # Step 2, while the insect write is still uncommitted: client 1's
    # own action reads the token — its closure must drag the insect
    # write along.  (Submitted later, after the commit, the same value
    # would arrive via the blind write instead; both are consistent.)
    engine.sim.schedule(
        60.0,
        lambda: client1.submit(
            ReadTokenAction(client1.next_action_id(), avatar_id(1),
                            position=Vec2(14, 10))
        ),
    )
    engine.run(until=2_000)
    engine.run_to_quiescence()
    # Client 1 evaluated its own action AND the insect dependency.
    assert client1.stats.stable_evaluations == 2
    # And computed the correct, consistent value.
    assert client1.stable.get(avatar_id(1))["bumps"] == 1
    assert engine.state.get(avatar_id(1))["bumps"] == 1


def test_own_actions_bypass_interest_filter():
    world, engine = make_engine(interests={0: profile("human")})
    client0 = engine.client(0)
    client0.submit(
        TokenAction(client0.next_action_id(), position=Vec2(10, 10),
                    interest_class="insect")  # own action, own filter
    )
    engine.run(until=1_000)
    engine.run_to_quiescence()
    assert client0.stats.confirmed == 1  # got its own echo regardless


def test_push_batches_group_entries():
    world, engine = make_engine()
    client0 = engine.client(0)
    # Three quick actions inside one push window (omega*RTT = 50ms).
    for i in range(3):
        engine.sim.schedule(
            10.0 + i * 5.0,
            lambda: client0.submit(
                TokenAction(client0.next_action_id(), position=Vec2(10, 10))
            ),
        )
    engine.run(until=1_000)
    engine.run_to_quiescence()
    # All three went out in few batches (batching, not per-action sends).
    server = engine.server
    assert server.stats.entries_distributed >= 6  # 3 actions x 2 clients
    assert server.stats.batches_sent <= 6


def test_far_away_client_not_pushed_spatially():
    class FarWorld(PairWorld):
        def initial_objects(self):
            yield avatar_object(0, Vec2(10, 10), speed=0.0)
            yield avatar_object(1, Vec2(500, 500), speed=0.0)
            yield WorldObject("token:0", {"value": 0})

        def client_radius(self, client_id):
            return 5.0

    world = FarWorld()
    engine = SeveEngine(
        world, 2, SeveConfig(mode="first-bound", rtt_ms=100.0, tick_ms=20.0)
    )
    engine.start(stop_at=10_000)
    client0 = engine.client(0)
    client0.submit(TokenAction(client0.next_action_id(), position=Vec2(10, 10)))
    engine.run(until=1_000)
    engine.run_to_quiescence()
    # Equation (1) excludes the far client entirely.
    assert engine.client(1).stats.stable_evaluations == 0
    assert engine.client(0).stats.confirmed == 1
