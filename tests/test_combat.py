"""Unit tests for the combat world and its semantic actions."""

from __future__ import annotations

import pytest

from repro.core.action import ActionId
from repro.state.store import ObjectStore
from repro.world.avatar import avatar_id, avatar_object
from repro.world.combat import (
    CombatConfig,
    CombatWorld,
    HealAction,
    ScryingSpellAction,
    ShootArrowAction,
)
from repro.world.geometry import Vec2


def arena(*healths, positions=None):
    objects = []
    for index, health in enumerate(healths):
        pos = (positions or {}).get(index, Vec2(10.0 * index, 0.0))
        obj = avatar_object(index, pos, health=health)
        objects.append(obj)
    return ObjectStore(objects)


def aid(seq=0, client=0):
    return ActionId(client, seq)


# ---------------------------------------------------------------------------
# ShootArrowAction
# ---------------------------------------------------------------------------
def shoot(shooter, target, damage=25, seq=0):
    return ShootArrowAction(
        aid(seq, shooter),
        avatar_id(shooter),
        avatar_id(target),
        damage=damage,
        position=Vec2(0, 0),
        shot_range=40.0,
    )


def test_arrow_damages_target():
    store = arena(100, 100)
    shoot(0, 1).apply(store)
    assert store.get(avatar_id(1))["health"] == 75
    assert store.get(avatar_id(1))["alive"] is True


def test_arrow_kills_at_zero_health():
    store = arena(100, 20)
    shoot(0, 1).apply(store)
    target = store.get(avatar_id(1))
    assert target["health"] == 0
    assert target["alive"] is False


def test_dead_shooter_fizzles():
    store = arena(100, 100)
    store.get(avatar_id(0))["alive"] = False
    result = shoot(0, 1).apply(store)
    assert result.aborted
    assert store.get(avatar_id(1))["health"] == 100


def test_arrow_into_corpse_is_noop():
    store = arena(100, 100)
    store.get(avatar_id(1))["alive"] = False
    result = shoot(0, 1).apply(store)
    assert not result.aborted
    assert result.values() == {}


def test_arrow_sets():
    action = shoot(0, 1)
    assert action.reads == frozenset({avatar_id(0), avatar_id(1)})
    assert action.writes == frozenset({avatar_id(1)})
    assert action.interest_class == "combat"


def test_negative_damage_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        shoot(0, 1, damage=-1)


# ---------------------------------------------------------------------------
# HealAction
# ---------------------------------------------------------------------------
def heal(healer, target, amount=20):
    return HealAction(
        aid(0, healer),
        avatar_id(healer),
        avatar_id(target),
        amount=amount,
        position=Vec2(0, 0),
        heal_range=40.0,
    )


def test_heal_restores_capped_at_100():
    store = arena(100, 50)
    heal(0, 1, amount=30).apply(store)
    assert store.get(avatar_id(1))["health"] == 80
    heal(0, 1, amount=75).apply(store)
    assert store.get(avatar_id(1))["health"] == 100


def test_heal_cannot_resurrect():
    store = arena(100, 100)
    store.get(avatar_id(1))["alive"] = False
    result = heal(0, 1).apply(store)
    assert result.values() == {}


def test_dead_healer_fizzles():
    store = arena(100, 50)
    store.get(avatar_id(0))["alive"] = False
    assert heal(0, 1).apply(store).aborted


# ---------------------------------------------------------------------------
# ScryingSpellAction — the paper's Section I example
# ---------------------------------------------------------------------------
def scry(healer, candidates, amount=30):
    return ScryingSpellAction(
        aid(0, healer),
        avatar_id(healer),
        frozenset(avatar_id(c) for c in candidates),
        amount=amount,
        position=Vec2(0, 0),
        spell_range=40.0,
    )


def test_scrying_heals_most_wounded():
    store = arena(100, 80, 35, 60)
    scry(0, [1, 2, 3]).apply(store)
    assert store.get(avatar_id(2))["health"] == 65  # 35 + 30
    assert store.get(avatar_id(1))["health"] == 80  # untouched


def test_scrying_write_target_is_data_dependent():
    """The same spell heals a different avatar when the crowd's health
    changes first — the reason visibility filtering breaks."""
    spell = scry(0, [1, 2])
    before = arena(100, 80, 90)
    spell.apply(before)
    assert before.get(avatar_id(1))["health"] == 100  # 80 was lowest

    # Same spell, but avatar 2 took a hit below avatar 1's health first:
    after = arena(100, 80, 90)
    after.get(avatar_id(2))["health"] = 10
    spell.apply(after)
    assert after.get(avatar_id(2))["health"] == 40  # now 2 was lowest
    assert after.get(avatar_id(1))["health"] == 80


def test_scrying_skips_dead_and_ties_break_deterministically():
    store = arena(100, 50, 50)
    store.get(avatar_id(1))["alive"] = False
    scry(0, [1, 2]).apply(store)
    assert store.get(avatar_id(2))["health"] == 80
    tie = arena(100, 50, 50)
    scry(0, [1, 2]).apply(tie)
    assert tie.get(avatar_id(1))["health"] == 80  # lowest oid wins ties


def test_scrying_with_everyone_dead_is_noop():
    store = arena(100, 50)
    store.get(avatar_id(1))["alive"] = False
    result = scry(0, [1]).apply(store)
    assert result.values() == {}


def test_scrying_declares_whole_crowd_as_writes():
    spell = scry(0, [1, 2, 3])
    assert spell.writes == frozenset({avatar_id(1), avatar_id(2), avatar_id(3)})
    assert avatar_id(0) in spell.reads


# ---------------------------------------------------------------------------
# CombatWorld
# ---------------------------------------------------------------------------
def test_world_basics():
    world = CombatWorld(6, CombatConfig(seed=3))
    objects = list(world.initial_objects())
    assert len(objects) == 6
    assert world.avatar_of(5) == avatar_id(5)
    assert world.avatar_of(6) is None
    assert world.max_speed == world.config.avatar_speed
    assert world.client_radius(0) == world.config.combat_range


def test_world_species_assignment():
    world = CombatWorld(10, CombatConfig(insect_fraction=0.4, seed=1))
    species = [world.species_of(i) for i in range(10)]
    assert species.count("insect") == 4
    assert species.count("human") == 6
    for obj in world.initial_objects():
        assert obj["species"] in ("human", "insect")


def test_plan_shot_builds_velocity_towards_target():
    world = CombatWorld(2, CombatConfig(seed=0))
    store = ObjectStore(world.initial_objects())
    action = world.plan_shot(store, 0, 1, aid(0, 0))
    assert action.velocity is not None
    assert action.damage == world.config.max_damage


def test_plan_scrying_over_crowd():
    world = CombatWorld(4, CombatConfig(seed=0))
    store = ObjectStore(world.initial_objects())
    spell = world.plan_scrying(store, 0, [1, 2, 3], aid(1, 0))
    assert spell.writes == frozenset(avatar_id(i) for i in (1, 2, 3))


def test_plan_move_tagged_with_species():
    world = CombatWorld(4, CombatConfig(insect_fraction=1.0, seed=0))
    store = ObjectStore(world.initial_objects())
    action = world.plan_move(store, 0, aid(0, 0))
    assert action.interest_class == "insect"
