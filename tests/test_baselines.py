"""Integration tests for the Central, Broadcast and RING baselines."""

from __future__ import annotations

import pytest

from repro.baselines.broadcast import BroadcastEngine
from repro.baselines.central import CentralEngine
from repro.baselines.common import BaselineConfig
from repro.baselines.ring import RingEngine
from repro.core.action import ActionId
from repro.errors import ProtocolError
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


def make_world(num=4, **kwargs):
    defaults = dict(
        width=200.0, height=200.0, num_walls=10, spawn="cluster",
        spawn_extent=40.0, seed=11,
    )
    defaults.update(kwargs)
    return ManhattanWorld(num, ManhattanConfig(**defaults))


def config(**kwargs):
    defaults = dict(rtt_ms=100.0, bandwidth_bps=None)
    defaults.update(kwargs)
    return BaselineConfig(**defaults)


def drive(engine, world, moves=4, interval=150.0, cost=1.0):
    seqs = {cid: 0 for cid in engine.clients}

    def make_submitter(cid):
        remaining = {"n": moves}

        def submit():
            if remaining["n"] <= 0:
                return
            remaining["n"] -= 1
            action = world.plan_move(
                engine.planning_store(cid),
                cid,
                ActionId(cid, seqs[cid]),
                cost_ms=cost,
            )
            seqs[cid] += 1
            engine.submit(cid, action)

        return submit

    for cid in engine.clients:
        engine.sim.call_every(
            interval,
            make_submitter(cid),
            start_delay=3.0 + cid,
            stop_at=interval * (moves + 2),
        )
    engine.run(until=interval * (moves + 2))
    engine.run_to_quiescence()


# ---------------------------------------------------------------------------
# Central
# ---------------------------------------------------------------------------
def test_central_confirms_every_move():
    world = make_world()
    engine = CentralEngine(world, 4, config())
    drive(engine, world)
    assert engine.response_times.summary().count == 16
    assert engine.stats.actions_evaluated == 16


def test_central_response_is_one_round_trip_plus_eval():
    world = make_world(num=1)
    engine = CentralEngine(world, 1, config())
    drive(engine, world, moves=3)
    summary = engine.response_times.summary()
    # RTT 100 + eval (1 + 1.9 overhead) + install 0.1
    assert summary.mean == pytest.approx(103.0, abs=2.0)


def test_central_server_cpu_is_the_bottleneck():
    world = make_world(num=6)
    engine = CentralEngine(world, 6, config())
    drive(engine, world, cost=5.0)
    client_cpu = max(c.host.cpu_time_used for c in engine.clients.values())
    assert engine.server_host.cpu_time_used > client_cpu


def test_central_interest_radius_limits_updates():
    world = make_world(num=6, spawn_extent=150.0)
    wide = CentralEngine(world, 6, config(), interest_radius=None)
    drive(wide, world)
    world2 = make_world(num=6, spawn_extent=150.0)
    narrow = CentralEngine(world2, 6, config(), interest_radius=10.0)
    drive(narrow, world2)
    assert narrow.stats.updates_sent < wide.stats.updates_sent


def test_central_replicas_hold_only_committed_values():
    world = make_world()
    engine = CentralEngine(world, 4, config())
    drive(engine, world)
    from repro.metrics.consistency import ConsistencyChecker

    checker = ConsistencyChecker(engine.state)
    report = checker.check_all(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert report.consistent


def test_central_rejects_unknown_messages():
    world = make_world(num=1)
    engine = CentralEngine(world, 1, config())
    engine.network.send(0, -1, "garbage", 10)
    with pytest.raises(ProtocolError):
        engine.run()


# ---------------------------------------------------------------------------
# Broadcast
# ---------------------------------------------------------------------------
def test_broadcast_everyone_evaluates_everything():
    world = make_world()
    engine = BroadcastEngine(world, 4, config())
    drive(engine, world)
    for client in engine.clients.values():
        assert client.evaluated == 16  # all 4x4 moves
    assert engine.stats.messages_sent == 64  # 16 actions x 4 clients


def test_broadcast_replicas_converge():
    world = make_world()
    engine = BroadcastEngine(world, 4, config())
    drive(engine, world)
    stores = [c.store for c in engine.clients.values()]
    for other in stores[1:]:
        assert stores[0].diff(other) == {}


def test_broadcast_traffic_quadratic_vs_central():
    moves, clients = 3, 6
    world = make_world(num=clients)
    broadcast = BroadcastEngine(world, clients, config())
    drive(broadcast, world, moves=moves)
    world2 = make_world(num=clients)
    central = CentralEngine(world2, clients, config(), interest_radius=30.0)
    drive(central, world2, moves=moves)
    assert (
        broadcast.network.meter.total_bytes
        > central.network.meter.total_bytes
    )


def test_broadcast_client_cpu_saturates_with_peers():
    world = make_world(num=8)
    engine = BroadcastEngine(world, 8, config())
    drive(engine, world, cost=5.0)
    # Each client evaluated 8x4 actions at ~6.9ms.
    for client in engine.clients.values():
        assert client.host.cpu_time_used == pytest.approx(32 * 6.9, rel=0.01)


# ---------------------------------------------------------------------------
# RING
# ---------------------------------------------------------------------------
def test_ring_filters_by_visibility():
    # Two clusters far apart: actions relayed only within a cluster.
    world = make_world(num=4, spawn_extent=190.0, seed=2)
    engine = RingEngine(world, 4, config(), visibility=20.0)
    drive(engine, world)
    assert engine.stats.messages_sent < engine.stats.actions_relayed * 4


def test_ring_originator_always_gets_echo():
    world = make_world(num=3, spawn_extent=190.0, seed=2)
    engine = RingEngine(world, 3, config(), visibility=1.0)
    drive(engine, world, moves=2)
    assert engine.response_times.summary().count == 6


def test_ring_server_tracks_positions():
    world = make_world(num=2)
    engine = RingEngine(world, 2, config(), visibility=30.0)
    drive(engine, world, moves=3)
    # Server replica advanced beyond the initial state for the movers.
    from repro.world.avatar import avatar_id, avatar_position

    initial = {o.oid: o for o in world.initial_objects()}
    moved = 0
    for cid in range(2):
        oid = avatar_id(cid)
        if avatar_position(engine.state.get(oid)) != avatar_position(initial[oid]):
            moved += 1
    assert moved >= 1


def test_ring_diverges_under_filtering():
    """The paper's core claim: visibility filtering loses consistency."""
    world = make_world(num=6, spawn_extent=150.0, seed=4)
    engine = RingEngine(world, 6, config(), visibility=15.0)
    drive(engine, world, moves=6)
    from repro.metrics.consistency import pairwise_divergence

    divergent = pairwise_divergence(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert divergent, "expected replica divergence under visibility filtering"
