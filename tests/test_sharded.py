"""Tests for the sharded multi-server SEVE deployment
(:mod:`repro.core.sharded`): partition geometry, the ``shards=1``
byte-identity differential, cross-shard runs with spanning actions and
client handoffs, the consistency audit, and the configuration guards.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SeveConfig, SeveEngine
from repro.core.sharded import (
    RegionPartition,
    ShardedSeveEngine,
    ShardingConfig,
)
from repro.errors import ConfigurationError
from repro.harness.architectures import _reliability_suite, build_engine, build_world
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload
from repro.net.faults import CrashWindow, FaultPlan, LivenessConfig


# ---------------------------------------------------------------------------
# Partition geometry
# ---------------------------------------------------------------------------
def test_shard_of_owns_stripes_and_clamps():
    partition = RegionPartition(100.0, 4)
    assert partition.stripe_width == 25.0
    assert partition.shard_of(0.0) == 0
    assert partition.shard_of(24.999) == 0
    assert partition.shard_of(25.0) == 1
    assert partition.shard_of(99.0) == 3
    # Outside the world clamps to the border stripes.
    assert partition.shard_of(-50.0) == 0
    assert partition.shard_of(250.0) == 3


def test_bounds_tile_the_world():
    partition = RegionPartition(120.0, 3)
    intervals = [partition.bounds(k) for k in range(3)]
    assert intervals == [(0.0, 40.0), (40.0, 80.0), (80.0, 120.0)]


def test_shards_touching_spans_the_influence_disc():
    partition = RegionPartition(100.0, 4)
    assert partition.shards_touching(50.0, 0.0) == (2,)
    assert partition.shards_touching(24.0, 3.0) == (0, 1)
    assert partition.shards_touching(50.0, 60.0) == (0, 1, 2, 3)
    # Disc entirely outside the world still clamps to a real stripe.
    assert partition.shards_touching(-20.0, 5.0) == (0,)


def test_home_with_hysteresis_tolerates_border_wobble():
    partition = RegionPartition(100.0, 2)
    # Inside the margin around the current stripe: stay home.
    assert partition.home_with_hysteresis(52.0, 0, margin=5.0) == 0
    assert partition.home_with_hysteresis(48.0, 1, margin=5.0) == 1
    # Beyond the margin: migrate.
    assert partition.home_with_hysteresis(56.0, 0, margin=5.0) == 1
    assert partition.home_with_hysteresis(44.0, 1, margin=5.0) == 0


def test_sharding_config_validates():
    with pytest.raises(ConfigurationError):
        ShardingConfig(shards=0)
    with pytest.raises(ConfigurationError):
        ShardingConfig(world_width=0.0)
    with pytest.raises(ConfigurationError):
        ShardingConfig(handoff_margin=-1.0)
    with pytest.raises(ConfigurationError):
        RegionPartition(100.0, 0)
    with pytest.raises(ConfigurationError):
        RegionPartition(-1.0, 2)


# ---------------------------------------------------------------------------
# shards=1 differential: byte-identical to the classic single server
# ---------------------------------------------------------------------------
DIFF = SimulationSettings(
    num_clients=8,
    num_walls=120,
    moves_per_client=6,
    world_width=300.0,
    world_height=300.0,
    spawn="cluster",
    spawn_extent=100.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=200.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
)

LOSSY = FaultPlan(loss_rate=0.05, jitter_ms=40.0, duplicate_rate=0.02, seed=7)


def _run_engine(shards, plan):
    """Run one engine (classic when ``shards`` is None, sharded
    otherwise) and return everything the run determines: final state,
    every client's observation log, the clock, the event count, and the
    wire traffic."""
    settings = DIFF.with_(fault_plan=plan)
    world = build_world(settings)
    reliability, retry, _ = _reliability_suite(settings)
    config = SeveConfig(
        mode="seve",
        rtt_ms=settings.rtt_ms,
        bandwidth_bps=None,
        omega=settings.omega,
        tick_ms=settings.tick_ms,
        threshold=settings.effective_threshold,
        eval_overhead_ms=settings.eval_overhead_ms,
        fault_plan=plan,
        reliability=reliability,
        retry=retry,
        record_observations=True,
    )
    if shards is None:
        engine = SeveEngine(world, settings.num_clients, config)
    else:
        engine = ShardedSeveEngine(
            world,
            settings.num_clients,
            config,
            sharding=ShardingConfig(
                shards=shards, world_width=settings.world_width
            ),
        )
    workload = MoveWorkload(engine, world, settings)
    horizon = settings.workload_duration_ms + 2 * settings.move_interval_ms
    if plan is not None:
        engine.start(stop_at=horizon + 15_000.0)
    else:
        engine.start()
    workload.install()
    engine.run(until=horizon)
    engine.run_to_quiescence()
    state = {
        oid: tuple(sorted(engine.state.get(oid).as_dict().items()))
        for oid in sorted(engine.state.ids())
    }
    observations = {
        cid: tuple(client.observations)
        for cid, client in engine.clients.items()
    }
    return (
        state,
        observations,
        engine.sim.now,
        engine.sim.dispatched,
        engine.network.meter.total_bytes,
    )


def test_one_shard_is_byte_identical_to_classic():
    classic = _run_engine(None, None)
    sharded = _run_engine(1, None)
    assert sharded == classic
    assert sum(len(log) for log in classic[1].values()) > 50  # non-vacuous


@pytest.mark.slow
def test_one_shard_is_byte_identical_under_faults():
    classic = _run_engine(None, LOSSY)
    sharded = _run_engine(1, LOSSY)
    assert sharded == classic


# ---------------------------------------------------------------------------
# Cross-shard runs: spans, handoffs, and the consistency audit
# ---------------------------------------------------------------------------
#: Cluster spawn at the world centre straddles every K=2/K=4 border, so
#: most moves are spanning actions and several avatars drift across.
SHARDED = SimulationSettings(
    num_clients=12,
    num_walls=200,
    moves_per_client=24,
    world_width=1000.0,
    world_height=1000.0,
    spawn="cluster",
    spawn_extent=120.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=250.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
    shards=2,
)


def _span_and_handoff_counts(result):
    spans = sum(row["spans_spliced"] for row in result.shard_rows)
    out = sum(row["handoffs_out"] for row in result.shard_rows)
    into = sum(row["handoffs_in"] for row in result.shard_rows)
    return spans, out, into


def test_two_shards_serialize_spans_and_hand_off_clients():
    result = run_simulation("seve", SHARDED)
    spans, out, into = _span_and_handoff_counts(result)
    assert spans > 0
    assert out > 0 and out == into  # every begun handoff completed
    assert result.shard_audit is not None
    assert result.shard_audit.consistent, result.shard_audit.summary()
    assert result.shard_audit.order_violations == []
    assert result.shard_audit.span_observations > 0
    assert result.consistency is not None and result.consistency.consistent
    # Serialization really is distributed: both shards committed work.
    assert all(row["committed"] > 0 for row in result.shard_rows)


@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_survives_lossy_transport(shards):
    settings = SHARDED.with_(shards=shards, fault_plan=LOSSY)
    result = run_simulation("seve", settings)
    spans, out, into = _span_and_handoff_counts(result)
    assert spans > 0
    assert out == into
    assert result.messages_dropped > 0  # the plan actually injected
    assert result.retransmissions > 0
    assert result.shard_audit.consistent, result.shard_audit.summary()


@pytest.mark.slow
def test_more_shards_spread_the_serialization_load():
    """The scaling signal behind Section VII: with spread-out clients
    the per-shard serialized count drops as K grows."""
    settings = SHARDED.with_(
        spawn="uniform", num_clients=16, moves_per_client=16
    )
    per_shard_max = {}
    for shards in (1, 4):
        result = run_simulation("seve", settings.with_(shards=shards))
        if result.shard_audit is not None:
            assert result.shard_audit.consistent
        per_shard_max[shards] = max(
            row["serialized"] for row in (result.shard_rows or [{"serialized": 0}])
        ) if result.shard_rows else result.moves_submitted
    assert per_shard_max[4] < per_shard_max[1]


def test_all_clients_remain_attached_after_handoffs():
    world = build_world(SHARDED)
    engine = build_engine("seve", SHARDED, world)
    workload = MoveWorkload(engine, world, SHARDED)
    horizon = SHARDED.workload_duration_ms + 2 * SHARDED.move_interval_ms
    engine.start()
    workload.install()
    engine.run(until=horizon)
    engine.run_to_quiescence()
    assert isinstance(engine, ShardedSeveEngine)
    for client_id in engine.clients:
        assert engine.shard_of_client(client_id) is not None
        assert not engine.clients[client_id]._migrating
    total_in = sum(
        server.shard_stats.handoffs_in for server in engine.shard_servers
    )
    total_out = sum(
        server.shard_stats.handoffs_out for server in engine.shard_servers
    )
    assert total_in > 0 and total_in == total_out
    # Each adopted client now lives in the stripe that owns its
    # committed avatar position (modulo the hysteresis margin).
    for client_id in engine.clients:
        shard = engine.shard_of_client(client_id)
        obj = engine.shard_states[shard].get(engine.world.avatar_of(client_id))
        assert (
            engine.partition.home_with_hysteresis(
                float(obj["x"]), shard, engine.sharding.handoff_margin
            )
            == shard
        )


# ---------------------------------------------------------------------------
# Configuration guards
# ---------------------------------------------------------------------------
def test_shards_require_push_mode():
    settings = DIFF.with_(shards=2)
    for architecture in ("incomplete", "seve-basic", "central", "broadcast"):
        with pytest.raises(ConfigurationError):
            build_engine(architecture, settings)


def test_shards_accept_crash_plans_and_liveness():
    """Regression: crash plans and liveness configs are legal at every
    K (docs/control_plane.md) — the old shard-0-SPOF rejections are
    gone for good."""
    crashing = FaultPlan(
        loss_rate=0.01, seed=3, crashes=(CrashWindow(0, 500.0, 1500.0),)
    )
    engine = build_engine("seve", DIFF.with_(shards=2, fault_plan=crashing))
    assert isinstance(engine, ShardedSeveEngine)
    world = build_world(DIFF)
    config = SeveConfig(mode="seve", rtt_ms=150.0, liveness=LivenessConfig())
    engine = ShardedSeveEngine(
        world,
        DIFF.num_clients,
        config,
        sharding=ShardingConfig(shards=2, world_width=DIFF.world_width),
    )
    assert engine.config.liveness is not None


def test_shard_crash_window_guards():
    """The guards that remain: shard windows need K >= 2, a real shard
    index, and killing shard 0 for good needs the replicated plane."""
    dead_shard = FaultPlan(seed=3, crashes=(
        CrashWindow(-1, 500.0, 1500.0, shard_index=1),
    ))
    with pytest.raises(ConfigurationError):
        SimulationSettings(shards=1, fault_plan=dead_shard)
    out_of_range = FaultPlan(seed=3, crashes=(
        CrashWindow(-1, 500.0, None, shard_index=5),
    ))
    with pytest.raises(ConfigurationError):
        build_engine("seve", DIFF.with_(shards=2, fault_plan=out_of_range))
    kill_zero = FaultPlan(seed=3, crashes=(
        CrashWindow(-1, 500.0, None, shard_index=0),
    ))
    with pytest.raises(ConfigurationError):
        build_engine("seve", DIFF.with_(shards=2, fault_plan=kill_zero))
    # The identical plan is legal once the sequencer is replicated.
    engine = build_engine(
        "seve",
        DIFF.with_(shards=2, fault_plan=kill_zero, control_plane="replicated"),
    )
    assert isinstance(engine, ShardedSeveEngine)


def test_sharded_engine_rejects_pull_modes():
    world = build_world(DIFF)
    config = SeveConfig(mode="incomplete", rtt_ms=150.0)
    with pytest.raises(ConfigurationError):
        ShardedSeveEngine(
            world,
            DIFF.num_clients,
            config,
            sharding=ShardingConfig(shards=2, world_width=DIFF.world_width),
        )


def test_settings_validate_shard_count():
    with pytest.raises(ConfigurationError):
        SimulationSettings(shards=0)


# ---------------------------------------------------------------------------
# Crash fault tolerance and the replicated control plane
# (docs/control_plane.md)
# ---------------------------------------------------------------------------
#: Small clustered deployment whose centre-spawn keeps spanning actions
#: in flight throughout — crashes land mid-span by construction.
FAULTED = SimulationSettings(
    num_clients=12,
    num_walls=60,
    moves_per_client=10,
    world_width=400.0,
    world_height=300.0,
    spawn="cluster",
    spawn_extent=90.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=200.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=13,
)


def _assert_survivors_consistent(result):
    assert result.consistency is not None and result.consistency.consistent
    assert result.shard_audit is not None
    assert result.shard_audit.consistent, result.shard_audit.summary()
    assert result.shard_audit.order_violations == []
    assert result.responses_observed > 0


def test_replicated_plane_is_protocol_transparent_fault_free():
    """Fault-free, the lease is pre-granted to shard 0: no election
    ever fires and every protocol outcome matches single mode exactly —
    only the heartbeat traffic differs."""
    single = run_simulation("seve", FAULTED.with_(shards=2))
    repl = run_simulation(
        "seve", FAULTED.with_(shards=2, control_plane="replicated")
    )
    assert repl.failovers == 0
    assert repl.moves_submitted == single.moves_submitted
    assert repl.responses_observed == single.responses_observed
    assert repl.response.mean == single.response.mean
    assert repl.shard_audit.span_observations == (
        single.shard_audit.span_observations
    )
    assert repl.total_traffic_kb > single.total_traffic_kb  # heartbeats


@pytest.mark.faults
@pytest.mark.parametrize("shards", [2, 4])
def test_shard_crash_and_restart_recovers(shards):
    """A shard host dies mid-span-flight and restarts from its
    checkpoint+WAL; survivors adopt its span obligations and the
    honest-survivor audit stays green at K=2 and K=4."""
    plan = FaultPlan(
        seed=7, crashes=(CrashWindow(-1, 1500.0, 3500.0, shard_index=1),)
    )
    result = run_simulation(
        "seve", FAULTED.with_(shards=shards, fault_plan=plan)
    )
    _assert_survivors_consistent(result)


@pytest.mark.faults
def test_permanent_sequencer_crash_fails_over():
    """Killing shard 0 for good under the replicated plane: the lease
    quorum elects a new sequencer and the run completes with audits
    green — the exact run the singleton sequencer could never survive."""
    plan = FaultPlan(
        seed=7, crashes=(CrashWindow(-1, 2000.0, None, shard_index=0),)
    )
    result = run_simulation(
        "seve",
        FAULTED.with_(
            shards=4, fault_plan=plan, control_plane="replicated"
        ),
    )
    _assert_survivors_consistent(result)
    assert result.failovers >= 1
    first = result.failover_events[0]
    assert first["holder"] != 0
    assert first["at_ms"] >= 2000.0


@pytest.mark.faults
def test_client_crash_and_reconnect_under_loss():
    """Client churn on a lossy wire at K=2: one permanent death, one
    crash+rejoin via ClientHello; the survivors stay consistent."""
    plan = FaultPlan(
        loss_rate=0.02,
        seed=5,
        crashes=(
            CrashWindow(2, 1200.0, 2600.0),
            CrashWindow(5, 1800.0, None),
        ),
    )
    result = run_simulation(
        "seve", FAULTED.with_(shards=2, fault_plan=plan)
    )
    _assert_survivors_consistent(result)
    assert result.clients_evicted >= 1


@pytest.mark.slow
@pytest.mark.faults
def test_shard_crash_during_elastic_epochs():
    """Shard crash + restart while the elastic rebalancer is live: the
    drain quorum shrinks to the survivors, the restarted shard catches
    up on the committed partition version, and audits stay green."""
    plan = FaultPlan(
        seed=9, crashes=(CrashWindow(-1, 2500.0, 5000.0, shard_index=1),)
    )
    result = run_simulation(
        "seve",
        FAULTED.with_(
            num_walls=60,
            moves_per_client=12,
            shards=4,
            fault_plan=plan,
            elastic=True,
            elastic_interval_ms=400.0,
            elastic_hysteresis=2,
            control_plane="replicated",
        ),
    )
    _assert_survivors_consistent(result)


@pytest.mark.slow
@pytest.mark.faults
def test_backends_agree_under_shard_crash():
    """The acceptance scenario: the same shard-crash plan at K=4 on the
    classic, windowed, and multiprocessing backends — every backend's
    audits are green, and the two windowed backends are byte-identical."""
    plan = FaultPlan(
        seed=7, crashes=(CrashWindow(-1, 1500.0, 3500.0, shard_index=2),)
    )
    base = FAULTED.with_(
        shards=4, fault_plan=plan, control_plane="replicated"
    )
    classic = run_simulation("seve", base)
    windowed = run_simulation("seve", base.with_(workers=4))
    parallel = run_simulation(
        "seve", base.with_(backend="parallel", workers=4)
    )
    for result in (classic, windowed, parallel):
        _assert_survivors_consistent(result)
    for field in (
        "moves_submitted",
        "responses_observed",
        "total_traffic_kb",
        "drop_percent",
        "events",
        "failover_events",
    ):
        assert getattr(windowed, field) == getattr(parallel, field), field
    assert windowed.response.mean == parallel.response.mean
