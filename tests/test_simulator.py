"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]
    assert sim.now == 10.0


def test_events_dispatch_in_time_order(sim):
    order = []
    sim.schedule(30.0, lambda: order.append("c"))
    sim.schedule(10.0, lambda: order.append("a"))
    sim.schedule(20.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order(sim):
    order = []
    for label in "abcde":
        sim.schedule(5.0, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_zero_delay_runs_at_current_time(sim):
    fired = []
    sim.schedule(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule(5.0, lambda: sim.schedule_at(20.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [20.0]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(10.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()  # must not raise


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(10))
    sim.schedule(50.0, lambda: fired.append(50))
    sim.run(until=30.0)
    assert fired == [10]
    assert sim.now == 30.0
    sim.run()
    assert fired == [10, 50]


def test_run_until_advances_clock_even_when_queue_drains(sim):
    sim.schedule(5.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_inclusive_of_boundary_events(sim):
    fired = []
    sim.schedule(30.0, lambda: fired.append(30))
    sim.run(until=30.0)
    assert fired == [30]


def test_max_events_limits_dispatch(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_on_empty_queue(sim):
    assert sim.step() is False


def test_step_dispatches_single_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]


def test_events_scheduled_during_dispatch_run(sim):
    fired = []

    def outer():
        sim.schedule(5.0, lambda: fired.append("inner"))

    sim.schedule(10.0, outer)
    sim.run()
    assert fired == ["inner"]
    assert sim.now == 15.0


def test_pending_counts_only_live_events(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert keep is not None


def test_pending_is_live_counter_not_scan(sim):
    # pending is maintained incrementally: dispatch and cancel both
    # decrement it exactly once, double-cancel does not double-count.
    events = [sim.schedule(float(i), lambda: None) for i in range(5)]
    assert sim.pending == 5
    events[0].cancel()
    events[0].cancel()
    assert sim.pending == 4
    sim.step()  # dispatches event 1 (event 0 is cancelled)
    assert sim.pending == 3
    events[1].cancel()  # already dispatched: no-op
    assert sim.pending == 3
    sim.run()
    assert sim.pending == 0


def test_cancel_during_own_dispatch_is_noop(sim):
    holder = {}

    def self_cancel():
        holder["event"].cancel()

    holder["event"] = sim.schedule(1.0, self_cancel)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.pending == 0
    assert sim.dispatched == 2


def test_dispatched_counter(sim):
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.dispatched == 4


def test_call_every_fires_periodically(sim):
    times = []
    sim.call_every(10.0, lambda: times.append(sim.now))
    sim.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_call_every_start_delay(sim):
    times = []
    sim.call_every(10.0, lambda: times.append(sim.now), start_delay=3.0)
    sim.run(until=25.0)
    assert times == [3.0, 13.0, 23.0]


def test_call_every_stop_function(sim):
    times = []
    stop = sim.call_every(10.0, lambda: times.append(sim.now))
    sim.schedule(25.0, stop)
    sim.run(until=100.0)
    assert times == [10.0, 20.0]


def test_call_every_stop_at(sim):
    times = []
    sim.call_every(10.0, lambda: times.append(sim.now), stop_at=40.0)
    sim.run(until=200.0)
    assert times == [10.0, 20.0, 30.0, 40.0]
    assert sim.pending == 0


def test_call_every_rejects_nonpositive_interval(sim):
    with pytest.raises(SimulationError):
        sim.call_every(0.0, lambda: None)


def test_deterministic_across_instances():
    def drive(s: Simulator):
        log = []
        s.schedule(5.0, lambda: log.append(("a", s.now)))
        s.schedule(5.0, lambda: log.append(("b", s.now)))
        s.call_every(2.0, lambda: log.append(("tick", s.now)), stop_at=6.0)
        s.run()
        return log

    assert drive(Simulator()) == drive(Simulator())
