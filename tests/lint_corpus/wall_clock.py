"""Lint corpus: wall-clock reads (expect 4 x wall-clock)."""

import time
from datetime import datetime


def stamp_events(log):
    started = time.time()
    deadline = time.monotonic() + 5.0
    log.append(datetime.now())
    log.append(datetime.utcnow())
    # Allowed: perf_counter feeds wall-clock telemetry, which never
    # enters a simulated result.
    elapsed = time.perf_counter() - started
    return deadline, elapsed
