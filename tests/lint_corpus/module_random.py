"""Lint corpus: global-RNG draws (expect 3 x module-random)."""

import random


def roll_dice(options):
    first = random.random()
    second = random.randint(1, 6)
    third = random.choice(options)
    # Allowed: drawing from an explicitly seeded instance.
    rng = random.Random(7)
    fourth = rng.random()
    return first, second, third, fourth
