"""Lint corpus: unsorted dict iteration inside a serialization path
(expect 1 x dict-iter-serialization)."""


def serialize_state(state):
    parts = []
    for key, value in state.items():
        parts.append(f"{key}={value}")
    return ";".join(parts)


def tick_state(state):
    # Allowed: not a serialization path, so insertion order is fine.
    for key, value in state.items():
        state[key] = value + 1


def encode_header(fields):
    # Allowed: sorted() canonicalises the order.
    return ";".join(f"{k}={v}" for k, v in sorted(fields.items()))
