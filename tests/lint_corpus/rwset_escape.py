"""Lint corpus for the static RW-set checker: one honest action, one
that escapes its declared sets four ways (expect 4 x rwset-escape)."""


class Action:
    """Stand-in base: discovery keys on the name, not the import."""


class SneakyAction(Action):
    def __init__(self, action_id, target, victim):
        self.victim = victim  # never fed into reads=/writes=
        super().__init__(
            action_id,
            reads=frozenset({target}),
            writes=frozenset({target}),
        )
        self.target = target

    def compute(self, store):
        hp = store.get(self.victim).get("hp")
        config = store.get("global-config")
        for oid in store:
            hp += 0
        return {self.victim: {"hp": hp - config.get("decay")}}


class HonestAction(Action):
    def __init__(self, action_id, target, witness):
        super().__init__(
            action_id,
            reads=frozenset({target, witness}),
            writes=frozenset({target}),
        )
        self.target = target
        self.witness = witness

    def compute(self, store):
        seen = store.get(self.witness).get("hp")
        current = store.get(self.target).get("hp")
        return {self.target: {"hp": current + min(seen, 1)}}
