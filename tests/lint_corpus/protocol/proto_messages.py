"""Known-bad corpus for the protocol conformance analyzer.

A miniature protocol-definition module: the three registries, a codec
with one missing encoder (``Legacy`` -> codec-fallback) and one
decoder-less encoder (``WriteOnly`` -> codec-decode-missing), an
``Orphan`` message nothing dispatches, and an unregistered ``Rogue``
class the node module handles anyway.  tests/test_protocol_analysis.py
pins the exact finding histogram; expected_graph.json pins the flow
graph extracted from this pair of files.

Never imported at runtime — analyzed purely as source.
"""


class Ping:
    pass


class Pong:
    pass


class Orphan:
    pass


class Legacy:
    pass


class DeadEnd:
    pass


class WriteOnly:
    pass


class Rogue:
    pass


class Inner:
    pass


PROTOCOL_MESSAGES = (Ping, Pong, Orphan, Legacy, DeadEnd, WriteOnly)
ENVELOPED_MESSAGES = (Inner,)
CONSERVATION_GROUPS = {
    "pings": {
        "messages": ["Ping"],
        "module": "proto_node.py",
        "sent": "pings_sent",
        "received": "pings_received",
    },
}


class _Codec:
    def _encode_body(self, message):
        if isinstance(message, Ping):
            return 1, b""
        if isinstance(message, Pong):
            return 2, b""
        if isinstance(message, Orphan):
            return 3, b""
        if isinstance(message, DeadEnd):
            return 4, b""
        if isinstance(message, WriteOnly):
            return 5, b""
        raise TypeError(message)

    def _decode_body(self, tag):
        if tag == 1:
            return Ping()
        if tag == 2:
            return Pong()
        if tag == 3:
            return Orphan()
        if tag == 4:
            return DeadEnd()
        raise TypeError(tag)
