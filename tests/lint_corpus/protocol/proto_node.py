"""Known-bad corpus: sender/handler module paired with proto_messages.

Seeds one finding per flow rule the node side can produce: an
uncounted ``Ping`` send, an uncounted ``Ping`` handler, a dispatch
branch for ``DeadEnd`` that nothing constructs, and a handler for the
unregistered ``Rogue``.  Never imported at runtime.
"""


class Node:
    def __init__(self):
        self.pings_sent = 0
        self.pings_received = 0
        self.log = []

    def send_ping(self):
        self.pings_sent += 1
        return Ping()

    def send_ping_uncounted(self):
        return Ping()  # protocol-unaccounted-send: no pings_sent bump

    def send_others(self):
        return [Pong(), Orphan(), Legacy(), WriteOnly(), Inner(), Rogue()]

    def handle(self, payload):
        if isinstance(payload, Ping):
            self.pings_received += 1
            self.log.append(payload)
        elif isinstance(payload, Pong):
            self.log.append(payload)
        elif isinstance(payload, Legacy):
            self.log.append(payload)
        elif isinstance(payload, WriteOnly):
            self.log.append(payload)
        elif isinstance(payload, DeadEnd):
            self.log.append(payload)  # protocol-dead-handler: no sender
        elif isinstance(payload, Rogue):
            self.log.append(payload)  # protocol-unregistered (at class def)

    def on_ping_stats(self, payload):
        if isinstance(payload, Ping):
            self.log.append(payload)  # protocol-unaccounted-handler
