"""Lint corpus: unsorted set iteration (expect 3 x set-iteration)."""


def visit_all(extra):
    order = []
    for item in {3, 1, 2}:
        order.append(item)
    pending = {"a", "b"} | extra
    for item in pending:
        order.append(item)
    order.extend(x for x in frozenset(extra))
    # Allowed: sorted() fixes the order.
    for item in sorted(pending):
        order.append(item)
    # Allowed: order-insensitive reducers over a set-typed generator.
    present = any(x in order for x in pending)
    return order, present
