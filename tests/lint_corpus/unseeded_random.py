"""Lint corpus: OS-seeded RNG construction (expect 2 x unseeded-random)."""

import random
from random import Random


def make_generators(seed):
    bad_qualified = random.Random()
    bad_bare = Random()
    good = random.Random(seed)
    return bad_qualified, bad_bare, good
