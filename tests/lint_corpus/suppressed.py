"""Lint corpus: per-line suppressions silence every rule (expect 0)."""

import time


def sample_with_waivers():
    stamp = time.time()  # lint: allow(wall-clock)
    total = 0.0
    for item in {1, 2, 3}:  # lint: allow(set-iteration)
        total += item
    return stamp, total
