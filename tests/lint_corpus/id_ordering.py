"""Lint corpus: id() used for ordering (expect 4 x id-ordering)."""


def rank(objs, a, b):
    ranked = sorted(objs, key=id)
    objs.sort(key=id)
    smallest = min(objs, key=id)
    a_first = id(a) < id(b)
    # Allowed: id() for identity bookkeeping, not ordering.
    seen = {id(obj) for obj in objs}
    return ranked, smallest, a_first, seen
