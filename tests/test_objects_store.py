"""Unit + property tests for WorldObject, ObjectStore and VersionedStore."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MissingObjectError, ProtocolError
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore, restrict
from repro.state.versioned import VersionedStore


def make_obj(oid="avatar:0", **attrs):
    defaults = {"x": 1.0, "y": 2.0, "health": 100}
    defaults.update(attrs)
    return WorldObject(oid, defaults)


# ---------------------------------------------------------------------------
# WorldObject
# ---------------------------------------------------------------------------
def test_object_mapping_access():
    obj = make_obj()
    assert obj["x"] == 1.0
    assert "health" in obj
    assert obj.get("missing", 7) == 7
    assert sorted(obj) == ["health", "x", "y"]


def test_object_rejects_mutable_values():
    with pytest.raises(ProtocolError):
        WorldObject("o:1", {"bad": [1, 2, 3]})
    obj = make_obj()
    with pytest.raises(ProtocolError):
        obj["bad"] = {"nested": "dict"}


def test_object_allows_tuples_and_none():
    obj = WorldObject("o:1", {"pos": (1.0, 2.0), "owner": None})
    assert obj["pos"] == (1.0, 2.0)
    assert obj["owner"] is None


def test_object_copy_is_independent():
    obj = make_obj()
    clone = obj.copy()
    clone["x"] = 99.0
    assert obj["x"] == 1.0
    assert clone.oid == obj.oid


def test_object_equality_and_hash():
    a = make_obj()
    b = make_obj()
    assert a == b
    assert hash(a) == hash(b)
    b["x"] = 5.0
    assert a != b


def test_object_update_bulk():
    obj = make_obj()
    obj.update({"x": 9.0, "health": 50})
    assert obj["x"] == 9.0
    assert obj["health"] == 50


def test_state_token_is_canonical():
    a = WorldObject("o:1", {"b": 2, "a": 1})
    b = WorldObject("o:1", {"a": 1, "b": 2})
    assert a.state_token() == b.state_token()


# ---------------------------------------------------------------------------
# ObjectStore
# ---------------------------------------------------------------------------
def test_store_put_get_contains():
    store = ObjectStore([make_obj()])
    assert "avatar:0" in store
    assert store.get("avatar:0")["x"] == 1.0
    assert len(store) == 1


def test_store_missing_raises_typed_error():
    store = ObjectStore()
    with pytest.raises(MissingObjectError) as info:
        store.get("ghost:1")
    assert info.value.oid == "ghost:1"
    assert isinstance(info.value, KeyError)


def test_store_discard_absent_is_noop():
    store = ObjectStore()
    store.discard("nothing:0")  # must not raise


def test_values_of_returns_copies():
    store = ObjectStore([make_obj()])
    values = store.values_of(["avatar:0"])
    values["avatar:0"]["x"] = 777.0
    assert store.get("avatar:0")["x"] == 1.0


def test_values_of_missing_raises():
    store = ObjectStore([make_obj()])
    with pytest.raises(MissingObjectError):
        store.values_of(["avatar:0", "ghost:9"])


def test_values_of_present_skips_missing():
    store = ObjectStore([make_obj()])
    values = store.values_of_present(["avatar:0", "ghost:9"])
    assert set(values) == {"avatar:0"}


def test_install_overwrites_wholesale():
    store = ObjectStore([make_obj()])
    store.install({"avatar:0": {"x": 5.0}})
    obj = store.get("avatar:0")
    assert obj["x"] == 5.0
    assert "health" not in obj  # wholesale replace


def test_merge_preserves_other_attributes():
    store = ObjectStore([make_obj()])
    store.merge({"avatar:0": {"x": 5.0}})
    obj = store.get("avatar:0")
    assert obj["x"] == 5.0
    assert obj["health"] == 100  # untouched


def test_merge_creates_absent_objects():
    store = ObjectStore()
    store.merge({"new:0": {"x": 1.0}})
    assert store.get("new:0")["x"] == 1.0


def test_has_all_and_missing():
    store = ObjectStore([make_obj()])
    assert store.has_all(["avatar:0"])
    assert not store.has_all(["avatar:0", "ghost:1"])
    assert store.missing(["avatar:0", "ghost:1"]) == frozenset({"ghost:1"})


def test_snapshot_is_deep():
    store = ObjectStore([make_obj()])
    snap = store.snapshot()
    snap.get("avatar:0")["x"] = 42.0
    assert store.get("avatar:0")["x"] == 1.0


def test_checksum_equal_for_equal_stores():
    a = ObjectStore([make_obj(), make_obj("wall:1", x=0.0)])
    b = a.snapshot()
    assert a.checksum() == b.checksum()
    b.get("avatar:0")["x"] = 9.0
    assert a.checksum() != b.checksum()


def test_checksum_subset():
    a = ObjectStore([make_obj(), make_obj("wall:1")])
    b = ObjectStore([make_obj()])
    assert a.checksum(["avatar:0"]) == b.checksum(["avatar:0"])


def test_diff_reports_mismatch_kinds():
    a = ObjectStore([make_obj(), make_obj("only-a:0")])
    b = ObjectStore([make_obj(), make_obj("only-b:0")])
    b.get("avatar:0")["x"] = 9.0
    diff = a.diff(b)
    assert diff["only-a:0"] == "only-in-self"
    assert diff["only-b:0"] == "only-in-other"
    assert "mismatch" in diff["avatar:0"]


def test_restrict_helper():
    values = {"a:0": {"x": 1.0}, "b:0": {"x": 2.0}}
    assert restrict(values, ["a:0", "c:0"]) == {"a:0": {"x": 1.0}}


# ---------------------------------------------------------------------------
# VersionedStore
# ---------------------------------------------------------------------------
def test_versions_increment_on_writes():
    store = VersionedStore([make_obj()])
    assert store.version("avatar:0") == 1
    store.merge({"avatar:0": {"x": 2.0}})
    assert store.version("avatar:0") == 2


def test_version_of_missing_raises():
    store = VersionedStore()
    with pytest.raises(MissingObjectError):
        store.version("ghost:0")


def test_history_records_full_states():
    store = VersionedStore([make_obj()])
    store.merge({"avatar:0": {"x": 2.0}}, commit_index=5)
    history = store.history("avatar:0")
    assert len(history) == 2
    version, commit, attrs = history[-1]
    assert version == 2
    assert commit == 5
    assert attrs["x"] == 2.0
    assert attrs["health"] == 100  # merge records the merged full state


def test_history_limit_bounds_retention():
    store = VersionedStore([make_obj()], history_limit=2)
    for i in range(5):
        store.merge({"avatar:0": {"x": float(i)}})
    assert len(store.history("avatar:0")) == 2
    assert store.version("avatar:0") == 6


def test_value_at_version():
    store = VersionedStore([make_obj()])
    store.merge({"avatar:0": {"x": 2.0}})
    assert store.value_at_version("avatar:0", 2)["x"] == 2.0
    assert store.value_at_version("avatar:0", 99) is None


def test_versioned_snapshot_is_plain_store():
    store = VersionedStore([make_obj()])
    snap = store.snapshot()
    assert isinstance(snap, ObjectStore)
    assert not isinstance(snap, VersionedStore)
    assert snap.get("avatar:0") == store.get("avatar:0")


def test_discard_clears_history():
    store = VersionedStore([make_obj()])
    store.discard("avatar:0")
    assert store.history("avatar:0") == ()
    with pytest.raises(MissingObjectError):
        store.version("avatar:0")


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
attr_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
)
attr_dicts = st.dictionaries(
    st.text(min_size=1, max_size=6), attr_values, min_size=1, max_size=5
)


@given(attrs=attr_dicts)
def test_install_then_values_roundtrip(attrs):
    store = ObjectStore()
    store.install({"o:0": dict(attrs)})
    assert store.values_of(["o:0"]) == {"o:0": dict(attrs)}


@given(base=attr_dicts, patch=attr_dicts)
def test_merge_is_dict_update(base, patch):
    store = ObjectStore()
    store.install({"o:0": dict(base)})
    store.merge({"o:0": dict(patch)})
    expected = dict(base)
    expected.update(patch)
    assert store.get("o:0").as_dict() == expected


@given(attrs=attr_dicts)
def test_snapshot_checksum_stability(attrs):
    store = ObjectStore()
    store.install({"o:0": dict(attrs)})
    assert store.checksum() == store.snapshot().checksum()
