"""Smoke tests for the per-figure experiment drivers (tiny scale).

These assert the *shape invariants* each figure must show, at a scale
small enough for CI; the benchmarks run the calibrated scale.
"""

from __future__ import annotations

import math

import pytest

from repro.harness import experiments
from repro.harness.config import SimulationSettings


TINY = SimulationSettings(
    num_walls=200,
    moves_per_client=6,
    spawn_extent=80.0,
)


def test_table1_renders():
    result = experiments.run_table1()
    text = result.render()
    assert "1000 x 1000" in text
    assert "238 ms" in text
    assert "100 Kbps" in text
    assert "45 units" in text


def test_figure6_shape():
    result = experiments.run_figure6(TINY, client_counts=(2, 8))
    text = result.render()
    assert "Figure 6" in text
    assert len(result.table.rows) == 2
    # At tiny scale nobody saturates; all responses are finite/positive.
    for row in result.table.rows:
        assert all(value > 0 for value in row[1:])


def test_figure7_seve_flat_central_grows():
    result = experiments.run_figure7(
        TINY, costs_ms=(1.0, 16.0), num_clients=12,
        architectures=("central", "seve"),
    )
    (cheap_central, cheap_seve) = result.table.rows[0][1:]
    (costly_central, costly_seve) = result.table.rows[1][1:]
    # 12 clients x (16 + 1.9) ms < 300ms round: still fine centrally,
    # but the growth direction must already be visible.
    assert costly_central > cheap_central
    # SEVE moves far less in relative terms.
    central_growth = costly_central / cheap_central
    seve_growth = costly_seve / cheap_seve
    assert seve_growth < central_growth


def test_figure8_runs_and_reports_drops():
    result = experiments.run_figure8(
        TINY, visibilities=(10.0, 40.0), num_clients=12
    )
    assert len(result.table.rows) == 2
    for row in result.table.rows:
        visibility, avg_visible, naive_ms, seve_ms, dropped = row
        assert naive_ms > 0 and seve_ms > 0
        assert dropped >= 0


def test_table2_monotone_scaffold():
    result = experiments.run_table2(
        TINY, effect_ranges=(1.0, 9.0), num_clients=12
    )
    small_range_drop = result.table.rows[0][1]
    big_range_drop = result.table.rows[1][1]
    assert small_range_drop <= big_range_drop + 1e-9


def test_figure9_broadcast_dominates_traffic():
    result = experiments.run_figure9(TINY, client_counts=(6,))
    row = result.table.rows[0]
    clients, central_kb, seve_kb, broadcast_kb = row
    assert broadcast_kb > central_kb
    assert broadcast_kb > seve_kb


def test_figure10_reports_overhead_and_violations():
    result = experiments.run_figure10(TINY, client_counts=(6,))
    row = result.table.rows[0]
    clients, seve_ms, ring_ms, overhead, closure_pct, violations = row
    assert seve_ms > 0 and ring_ms > 0
    assert not math.isnan(overhead)
    assert closure_pct >= 0
    assert violations is not None


def test_ablation_culling_runs():
    result = experiments.run_ablation_culling(TINY, client_counts=(4,))
    assert len(result.table.rows) == 1
    assert all(v > 0 for v in result.table.rows[0][1:])


def test_ablation_omega_bound_tracks():
    result = experiments.run_ablation_omega(
        TINY, omegas=(0.25, 0.75), num_clients=4
    )
    low, high = result.table.rows
    assert low[1] < high[1]  # theoretical bound grows with omega
    assert low[2] < high[2]  # measured mean follows


def test_ablation_threshold_drop_tradeoff():
    result = experiments.run_ablation_threshold(
        TINY, thresholds=(2.0, 1000.0), num_clients=12
    )
    tight, loose = result.table.rows
    assert tight[1] >= loose[1]  # tighter threshold drops at least as much
