"""Property-based protocol tests: for *any* small random workload, the
SEVE protocol must satisfy its invariants.

Invariant 1 (Theorem 1): at quiescence, every value a client's stable
replica holds is some committed version.
Invariant 2 (determinism): the whole run is a pure function of the
(workload, seed) pair.
Invariant 3 (conservation): every submitted action is either confirmed
or aborted, exactly once.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.consistency import ConsistencyChecker
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


# One workload step: (client, delay to next step).
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.floats(min_value=1.0, max_value=400.0)),
    min_size=1,
    max_size=25,
)

modes = st.sampled_from(["seve", "first-bound", "incomplete", "basic"])


def run_workload(mode, schedule, threshold=20.0, seed=1):
    world = ManhattanWorld(
        5,
        ManhattanConfig(width=150.0, height=150.0, num_walls=25,
                        spawn="cluster", spawn_extent=30.0, seed=seed),
    )
    engine = SeveEngine(
        world, 5,
        SeveConfig(mode=mode, rtt_ms=80.0, tick_ms=15.0, threshold=threshold),
    )
    engine.start(stop_at=120_000)
    t = 5.0
    for client_id, delay in schedule:
        def submit(cid=client_id):
            client = engine.client(cid)
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=0.5
            ))

        engine.sim.schedule(t, submit)
        t += delay
    engine.run(until=t + 500.0)
    engine.run_to_quiescence(max_extra_ms=60_000)
    return engine


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=steps, mode=modes)
def test_every_action_resolves_exactly_once(schedule, mode):
    engine = run_workload(mode, schedule)
    for client in engine.clients.values():
        assert client.stats.confirmed + client.stats.aborted == (
            client.stats.submitted
        )
        assert client.pending_count == 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=steps,
       threshold=st.floats(min_value=1.0, max_value=200.0))
def test_theorem1_for_random_workloads_and_thresholds(schedule, threshold):
    engine = run_workload("seve", schedule, threshold=threshold)
    checker = ConsistencyChecker(engine.state)
    report = checker.check_all(
        {cid: c.stable for cid, c in engine.clients.items()}
    )
    assert report.consistent, report.violations[:3]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=steps)
def test_runs_are_deterministic(schedule):
    def fingerprint():
        engine = run_workload("seve", schedule)
        return (
            engine.sim.now,
            engine.network.meter.total_bytes,
            engine.response_times.summary().mean,
            engine.state.checksum(),
            engine.total_dropped,
        )

    first = fingerprint()
    second = fingerprint()
    # NaN mean (no responses) compares unequal; normalise.
    import math

    def norm(fp):
        return tuple(0.0 if isinstance(v, float) and math.isnan(v) else v
                     for v in fp)

    assert norm(first) == norm(second)
