"""Integration tests for the workload generator, the run driver, and the
settings object."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.architectures import ARCHITECTURES, build_engine, build_world
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload


# ---------------------------------------------------------------------------
# Settings
# ---------------------------------------------------------------------------
def test_table1_defaults():
    settings = SimulationSettings()
    assert settings.world_width == 1000.0
    assert settings.num_walls == 100_000
    assert settings.rtt_ms == 238.0
    assert settings.bandwidth_bps == 100_000.0
    assert settings.moves_per_client == 100
    assert settings.move_interval_ms == 300.0
    assert settings.move_effect_range == 10.0
    assert settings.visibility == 30.0
    assert settings.effective_threshold == 45.0  # 1.5 x visibility
    assert settings.move_cost_ms == 7.44


def test_threshold_override():
    assert SimulationSettings(threshold=7.0).effective_threshold == 7.0


def test_workload_duration():
    settings = SimulationSettings(moves_per_client=10, move_interval_ms=100.0)
    assert settings.workload_duration_ms == 1000.0


def test_with_helpers_return_new_objects():
    base = SimulationSettings()
    modified = base.with_clients(3).with_(visibility=9.0)
    assert modified.num_clients == 3
    assert modified.visibility == 9.0
    assert base.num_clients == 64


def test_invalid_settings_rejected():
    with pytest.raises(ConfigurationError):
        SimulationSettings(cost_model="quantum")
    with pytest.raises(ConfigurationError):
        SimulationSettings(moves_per_client=-1)
    with pytest.raises(ConfigurationError):
        SimulationSettings(move_interval_ms=0.0)


def test_manhattan_config_mirror():
    settings = SimulationSettings(visibility=12.0, move_effect_range=3.0)
    config = settings.manhattan_config()
    assert config.visibility == 12.0
    assert config.effect_range == 3.0
    assert config.move_duration_s == pytest.approx(0.3)


# ---------------------------------------------------------------------------
# Architecture factory
# ---------------------------------------------------------------------------
def test_every_architecture_builds(small_settings):
    world = build_world(small_settings)
    for architecture in ARCHITECTURES:
        engine = build_engine(architecture, small_settings, world)
        assert len(engine.clients) == small_settings.num_clients


def test_unknown_architecture_rejected(small_settings):
    with pytest.raises(ConfigurationError):
        build_engine("quantum", small_settings)


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------
def test_workload_submits_exact_quota(small_settings):
    world = build_world(small_settings)
    engine = build_engine("seve", small_settings, world)
    workload = MoveWorkload(engine, world, small_settings)
    engine.start()
    workload.install()
    engine.run(until=small_settings.workload_duration_ms + 1000)
    assert workload.finished
    expected = small_settings.num_clients * small_settings.moves_per_client
    assert workload.stats.moves_submitted == expected


def test_workload_cost_model_walls(small_settings):
    settings = small_settings.with_(cost_model="walls", num_walls=400)
    world = build_world(settings)
    engine = build_engine("seve", settings, world)
    workload = MoveWorkload(engine, world, settings)
    engine.start()
    workload.install()
    engine.run(until=settings.workload_duration_ms + 1000)
    costs = workload.stats.costs
    assert costs and all(cost >= 0 for cost in costs)
    # Costs vary with local wall density.
    assert len(set(round(c, 4) for c in costs)) > 1


def test_workload_is_deterministic(small_settings):
    def run_once():
        world = build_world(small_settings)
        engine = build_engine("seve", small_settings, world)
        workload = MoveWorkload(engine, world, small_settings)
        engine.start()
        workload.install()
        engine.run(until=small_settings.workload_duration_ms + 2000)
        engine.run_to_quiescence()
        return (
            engine.response_times.summary().mean,
            engine.network.meter.total_bytes,
        )

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
def test_run_simulation_end_to_end(small_settings):
    result = run_simulation("seve", small_settings)
    expected = small_settings.num_clients * small_settings.moves_per_client
    assert result.moves_submitted == expected
    assert result.responses_observed + result.settings.num_clients * 0 <= expected
    assert result.responses_observed > 0
    assert result.total_traffic_kb > 0
    assert result.client_traffic_kb > 0
    assert result.consistency is not None and result.consistency.consistent
    assert result.virtual_ms > small_settings.workload_duration_ms
    assert result.events > 0
    assert result.mean_response_ms == result.response.mean


@pytest.mark.parametrize("architecture", ["central", "broadcast", "ring", "seve-basic"])
def test_run_simulation_baselines(small_settings, architecture):
    result = run_simulation(architecture, small_settings)
    assert result.responses_observed > 0
    if architecture in ("central", "broadcast", "seve-basic"):
        assert result.consistency.consistent


def test_run_simulation_skips_consistency_when_asked(small_settings):
    result = run_simulation("seve", small_settings, check_consistency=False)
    assert result.consistency is None


def test_run_simulation_reuses_world(small_settings):
    world = build_world(small_settings)
    a = run_simulation("seve", small_settings, world=world, check_consistency=False)
    b = run_simulation("seve", small_settings, world=world, check_consistency=False)
    assert a.mean_response_ms == b.mean_response_ms
