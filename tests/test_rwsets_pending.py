"""Unit + property tests for read/write-set algebra and the pending queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.action import ABORT_RESULT, Action, ActionId, ActionResult
from repro.core.pending import PendingQueue
from repro.core.rwsets import (
    backward_chain,
    conflicts,
    read_set_union,
    write_set_union,
)
from repro.errors import ProtocolError


class SetsAction(Action):
    """Action defined purely by its declared sets (no behaviour)."""

    def __init__(self, action_id, reads, writes):
        super().__init__(
            action_id, reads=frozenset(reads), writes=frozenset(writes)
        )

    def compute(self, store):
        return {}


def action(seq, reads, writes, client=0):
    return SetsAction(ActionId(client, seq), set(reads) | set(writes), writes)


# ---------------------------------------------------------------------------
# rwsets
# ---------------------------------------------------------------------------
def test_conflicts_is_ws_intersect_rs():
    a = action(0, [], ["x"])
    b = action(1, ["x"], [])
    c = action(2, ["y"], [])
    assert conflicts(a, b)
    assert not conflicts(a, c)


def test_conflicts_covers_write_write():
    a = action(0, [], ["x"])
    b = action(1, [], ["x"])  # RS >= WS, so b reads x too
    assert conflicts(a, b)


def test_unions():
    actions = [action(0, ["a"], ["x"]), action(1, ["b"], ["y"])]
    assert write_set_union(actions) == frozenset({"x", "y"})
    assert read_set_union(actions) == frozenset({"a", "b", "x", "y"})
    assert write_set_union([]) == frozenset()


def test_backward_chain_simple_dependency():
    queue = [
        action(0, [], ["x"]),
        action(1, [], ["z"]),  # irrelevant
        action(2, ["x"], ["y"]),
    ]
    chain, accumulated = backward_chain(queue, frozenset({"y"}))
    assert chain == [0, 2]  # a2 writes y; a0 writes x read by a2
    assert "x" in accumulated and "y" in accumulated
    assert "z" not in accumulated


def test_backward_chain_empty_seed():
    queue = [action(0, [], ["x"])]
    chain, accumulated = backward_chain(queue, frozenset())
    assert chain == []
    assert accumulated == frozenset()


def test_backward_chain_transitivity_order():
    # a0 -> a1 -> a2, seed reads only what a2 writes.
    queue = [
        action(0, [], ["a"]),
        action(1, ["a"], ["b"]),
        action(2, ["b"], ["c"]),
    ]
    chain, _ = backward_chain(queue, frozenset({"c"}))
    assert chain == [0, 1, 2]


def test_backward_chain_skips_covered_independent():
    queue = [
        action(0, [], ["p"]),
        action(1, [], ["q"]),
    ]
    chain, _ = backward_chain(queue, frozenset({"q"}))
    assert chain == [1]


def test_empty_set_action_is_legal_and_conflict_free():
    empty = action(0, [], [])
    writer = action(1, [], ["x"])
    assert empty.reads == frozenset() and empty.writes == frozenset()
    assert not conflicts(empty, writer)
    assert not conflicts(writer, empty)
    assert read_set_union([empty]) == frozenset()
    assert write_set_union([empty]) == frozenset()


def test_rs_must_contain_ws_at_construction():
    # RS ⊇ WS is enforced when the action is built, not when it runs.
    with pytest.raises(ProtocolError):
        SetsAction(ActionId(0, 0), reads={"x"}, writes={"x", "y"})


def test_conflicts_is_asymmetric():
    # conflicts(a, b) asks whether a's writes touch b's reads; a pure
    # reader conflicts with nothing downstream of it.
    writer = action(0, [], ["x"])
    reader = SetsAction(ActionId(0, 1), reads={"x"}, writes=set())
    assert conflicts(writer, reader)
    assert not conflicts(reader, writer)


def test_backward_chain_never_includes_empty_ws_actions():
    # Chains are built from writers; a pure reader can never join one,
    # even when its read set overlaps the seed.
    queue = [
        SetsAction(ActionId(0, 0), reads={"x", "y"}, writes=set()),
        action(1, [], ["x"]),
    ]
    chain, accumulated = backward_chain(queue, frozenset({"x"}))
    assert chain == [1]
    assert "x" in accumulated
    assert "y" not in accumulated


@given(
    data=st.lists(
        st.tuples(
            st.sets(st.sampled_from("abcdef"), max_size=3),
            st.sets(st.sampled_from("abcdef"), max_size=2),
        ),
        max_size=12,
    ),
    seed=st.sets(st.sampled_from("abcdef"), max_size=3),
)
def test_backward_chain_is_transitively_closed(data, seed):
    """Invariant: a non-chain action must not write anything read by the
    seed or by a chain member that comes *after* it — otherwise a
    replica replaying the chain would use wrong values for that read."""
    queue = [action(i, reads, writes) for i, (reads, writes) in enumerate(data)]
    chain, accumulated = backward_chain(queue, frozenset(seed))
    chain_set = set(chain)
    assert chain == sorted(chain)  # causal (ascending) order
    for index, entry in enumerate(queue):
        if index in chain_set:
            continue
        needed_after = set(seed)
        for j in chain:
            if j > index:
                needed_after |= queue[j].reads
        assert not (entry.writes & needed_after), (
            f"non-chain action {index} writes {entry.writes & needed_after} "
            f"needed by later chain members"
        )
    assert accumulated >= frozenset(seed)


# ---------------------------------------------------------------------------
# PendingQueue
# ---------------------------------------------------------------------------
def result(**values):
    return ActionResult.of({"o:0": dict(values)}) if values else ABORT_RESULT


def test_push_head_pop_fifo():
    queue = PendingQueue()
    a0 = action(0, [], ["x"])
    a1 = action(1, [], ["y"])
    queue.push(a0, ABORT_RESULT)
    queue.push(a1, ABORT_RESULT)
    assert len(queue) == 2
    assert queue.head()[0] is a0
    popped, _ = queue.pop_head()
    assert popped is a0
    assert queue.head()[0] is a1


def test_head_and_pop_on_empty_raise():
    queue = PendingQueue()
    with pytest.raises(ProtocolError):
        queue.head()
    with pytest.raises(ProtocolError):
        queue.pop_head()


def test_write_set_union_with_multiplicity():
    queue = PendingQueue()
    a0 = action(0, [], ["x", "y"])
    a1 = action(1, [], ["y"])
    queue.push(a0, ABORT_RESULT)
    queue.push(a1, ABORT_RESULT)
    assert queue.write_set() == frozenset({"x", "y"})
    queue.pop_head()  # removes a0
    assert queue.write_set() == frozenset({"y"})  # y still written by a1
    assert queue.writes("y")
    assert not queue.writes("x")


def test_remove_middle_entry():
    queue = PendingQueue()
    actions = [action(i, [], [f"o{i}"]) for i in range(3)]
    for a in actions:
        queue.push(a, ABORT_RESULT)
    removed = queue.remove(ActionId(0, 1))
    assert removed is actions[1]
    assert [a.action_id.seq for a in queue.actions()] == [0, 2]
    assert not queue.writes("o1")


def test_remove_absent_returns_none():
    queue = PendingQueue()
    assert queue.remove(ActionId(0, 99)) is None


def test_contains():
    queue = PendingQueue()
    queue.push(action(4, [], ["x"]), ABORT_RESULT)
    assert queue.contains(ActionId(0, 4))
    assert not queue.contains(ActionId(0, 5))


def test_replace_result():
    queue = PendingQueue()
    queue.push(action(0, [], ["x"]), ABORT_RESULT)
    new = ActionResult.of({"x": {"v": 1}})
    queue.replace_result(0, new)
    assert queue.head()[1] == new


def test_iteration_yields_pairs():
    queue = PendingQueue()
    a = action(0, [], ["x"])
    queue.push(a, ABORT_RESULT)
    assert list(queue) == [(a, ABORT_RESULT)]
    assert bool(queue)


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.sets(st.sampled_from("abc"), min_size=1, max_size=2)),
            st.just(("pop", None)),
        ),
        max_size=30,
    )
)
def test_write_set_matches_brute_force(ops):
    queue = PendingQueue()
    mirror = []
    seq = 0
    for op, writes in ops:
        if op == "push":
            a = action(seq, [], writes)
            seq += 1
            queue.push(a, ABORT_RESULT)
            mirror.append(a)
        elif mirror:
            queue.pop_head()
            mirror.pop(0)
    expected = frozenset().union(*(a.writes for a in mirror)) if mirror else frozenset()
    assert queue.write_set() == expected
