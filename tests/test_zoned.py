"""Tests for the zoned Central architecture (Section II-A).

The headline behaviour: zoning multiplies capacity while players spread
out, and collapses when everyone crowds into one zone — the paper's
"zones collapse if too many users crowd into a zone all at once".
"""

from __future__ import annotations

import pytest

from repro.baselines.common import BaselineConfig
from repro.baselines.zoned import ZonedCentralEngine
from repro.core.action import ActionId
from repro.errors import ConfigurationError
from repro.world.geometry import Vec2
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


def make_world(num, spawn="uniform", extent=160.0, seed=21):
    return ManhattanWorld(
        num,
        ManhattanConfig(
            width=400.0, height=400.0, num_walls=0, spawn=spawn,
            spawn_extent=extent, seed=seed,
        ),
    )


def make_engine(world, num, zone_grid=2):
    return ZonedCentralEngine(
        world,
        num,
        BaselineConfig(rtt_ms=100.0, bandwidth_bps=None),
        zone_grid=zone_grid,
        world_width=400.0,
        world_height=400.0,
        interest_radius=30.0,
    )


def drive(engine, world, moves=4, interval=300.0, cost=6.0):
    seqs = {cid: 0 for cid in engine.clients}
    for cid in engine.clients:
        def submit(cid=cid, n={"left": moves}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            action = world.plan_move(
                engine.planning_store(cid), cid, ActionId(cid, seqs[cid]),
                cost_ms=cost,
            )
            seqs[cid] += 1
            engine.submit(cid, action)

        engine.sim.call_every(interval, submit, start_delay=2.0 + cid,
                              stop_at=interval * (moves + 2))
    engine.run(until=interval * (moves + 2))
    engine.run_to_quiescence()


def test_zone_geometry():
    world = make_world(1)
    engine = make_engine(world, 1, zone_grid=2)
    assert engine.zone_of_point(Vec2(10, 10)) == 0
    assert engine.zone_of_point(Vec2(390, 10)) == 1
    assert engine.zone_of_point(Vec2(10, 390)) == 2
    assert engine.zone_of_point(Vec2(390, 390)) == 3
    # Points outside clamp to the border tiles.
    assert engine.zone_of_point(Vec2(-5, -5)) == 0


def test_invalid_grid_rejected():
    world = make_world(1)
    with pytest.raises(ConfigurationError):
        make_engine_bad = ZonedCentralEngine(
            world, 1, BaselineConfig(), zone_grid=0
        )


def test_population_split_across_zones():
    world = make_world(16, spawn="uniform")
    engine = make_engine(world, 16)
    population = engine.zone_population()
    assert sum(population.values()) == 16
    assert len(population) >= 2  # uniform spawn hits several tiles


def test_spread_load_uses_multiple_zone_cpus():
    world = make_world(12, spawn="uniform")
    engine = make_engine(world, 12)
    drive(engine, world)
    busy_zones = sum(1 for host in engine.zone_hosts if host.cpu_time_used > 0)
    assert busy_zones >= 2
    assert engine.stats.actions_evaluated == 48
    assert engine.response_times.summary().count == 48


def test_crowded_zone_concentrates_load():
    # 3x3 grid: the central cluster sits inside the middle tile (an even
    # grid would put the world centre exactly on a tile corner).
    world = make_world(12, spawn="cluster", extent=40.0)
    engine = make_engine(world, 12, zone_grid=3)
    drive(engine, world)
    busy = [host for host in engine.zone_hosts if host.cpu_time_used > 0]
    # Everyone spawned inside one tile: exactly one zone CPU did the work.
    assert len(busy) == 1


def test_zoning_scales_until_the_crowd_arrives():
    """The Section II-A claim, quantified: same total population, same
    total CPU demand — spread across zones it is fine, crowded into one
    zone it saturates that zone's server."""
    num = 16
    spread_world = make_world(num, spawn="uniform", seed=5)
    spread = make_engine(spread_world, num, zone_grid=3)
    drive(spread, spread_world, moves=5, cost=14.0)

    crowd_world = make_world(num, spawn="cluster", extent=30.0, seed=5)
    crowd = make_engine(crowd_world, num, zone_grid=3)
    drive(crowd, crowd_world, moves=5, cost=14.0)

    assert crowd.busiest_zone_utilization > spread.busiest_zone_utilization
    # The crowded zone's queueing shows up in the tail response time.
    assert crowd.response_times.summary().p95 > spread.response_times.summary().p95


def test_handoffs_tracked_when_crossing_tiles():
    world = make_world(4, spawn="cluster", extent=6.0, seed=8)
    engine = make_engine(world, 4, zone_grid=4)  # 100-unit tiles
    # Long-running drive so avatars wander across tile borders.
    drive(engine, world, moves=30, interval=120.0, cost=1.0)
    assert engine.stats.handoffs >= 1


def test_cross_zone_updates_preserve_visibility():
    # Two avatars straddling a tile border must still see each other.
    world = make_world(2, spawn="grid", seed=1)
    # Manually position: grid spawn centres both near the middle of the
    # world, which is exactly the 2x2 tile corner.
    engine = make_engine(world, 2)
    drive(engine, world, moves=3, cost=1.0)
    assert engine.stats.cross_zone_updates > 0
    from repro.metrics.consistency import ConsistencyChecker

    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert report.consistent
