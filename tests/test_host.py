"""Unit tests for the host CPU model (sequential queue + saturation)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net.host import Host
from repro.net.simulator import Simulator


@pytest.fixture
def host(sim):
    return Host(sim, 0)


def test_single_item_completes_after_cost(sim, host):
    done = []
    host.execute(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [10.0]


def test_items_run_sequentially(sim, host):
    done = []
    host.execute(10.0, lambda: done.append(("a", sim.now)))
    host.execute(5.0, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", 10.0), ("b", 15.0)]


def test_zero_cost_item_preserves_fifo_order(sim, host):
    done = []
    host.execute(10.0, lambda: done.append("a"))
    host.execute(0.0, lambda: done.append("b"))
    host.execute(0.0, lambda: done.append("c"))
    sim.run()
    assert done == ["a", "b", "c"]


def test_negative_cost_rejected(host):
    with pytest.raises(SimulationError):
        host.execute(-1.0, lambda: None)


def test_queue_length_counts_waiting_items(sim, host):
    host.execute(10.0, lambda: None)
    host.execute(10.0, lambda: None)
    host.execute(10.0, lambda: None)
    # One is running, two are waiting.
    assert host.queue_length == 2
    assert host.busy


def test_idle_host_not_busy(host):
    assert not host.busy
    assert host.queue_length == 0


def test_saturation_accumulates_queue_delay(sim, host):
    # Offered load: one 20ms item every 10ms -> unbounded queue growth.
    completion_times = []
    for i in range(5):
        sim.schedule(
            i * 10.0,
            lambda: host.execute(20.0, lambda: completion_times.append(sim.now)),
        )
    sim.run()
    # Items finish every 20ms starting at 20: 20, 40, 60, 80, 100.
    assert completion_times == [20.0, 40.0, 60.0, 80.0, 100.0]
    assert host.total_queue_delay > 0


def test_speed_factor_scales_cost(sim):
    slow = Host(sim, 1, speed_factor=2.0)
    done = []
    slow.execute(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [20.0]


def test_speed_factor_must_be_positive(sim):
    with pytest.raises(SimulationError):
        Host(sim, 1, speed_factor=0.0)


def test_cpu_time_and_items_accounting(sim, host):
    host.execute(5.0, lambda: None)
    host.execute(7.0, lambda: None)
    sim.run()
    assert host.cpu_time_used == pytest.approx(12.0)
    assert host.items_completed == 2


def test_utilization_fraction(sim, host):
    host.execute(25.0, lambda: None)
    sim.run(until=100.0)
    assert host.utilization() == pytest.approx(0.25)


def test_utilization_zero_elapsed(sim, host):
    assert host.utilization() == 0.0


def test_work_submitted_from_completion_runs(sim, host):
    done = []

    def first():
        host.execute(5.0, lambda: done.append(("second", sim.now)))

    host.execute(10.0, first)
    sim.run()
    assert done == [("second", 15.0)]


def test_items_interleave_with_simulator_time(sim, host):
    done = []
    host.execute(10.0, lambda: done.append(("work", sim.now)))
    sim.schedule(5.0, lambda: done.append(("event", sim.now)))
    sim.run()
    assert done == [("event", 5.0), ("work", 10.0)]
