"""Unit tests for the output-sensitive distribution indexes:
:class:`WriterIndex` (inverted Algorithm 6 write index, GC'd with the
commit frontier) and :class:`ClientSpatialIndex` (committed avatar
positions for push-cycle candidate queries)."""

from __future__ import annotations

import random

from repro.core.action import Action, ActionId
from repro.core.indexes import ClientSpatialIndex, WriterIndex
from repro.core.closure import QueueEntry, transitive_closure
from repro.world.geometry import Vec2


# ----------------------------------------------------------------------
# WriterIndex
# ----------------------------------------------------------------------
def test_writer_index_tracks_ascending_positions():
    index = WriterIndex()
    index.note_enqueued(0, {"a", "b"})
    index.note_enqueued(1, {"b"})
    index.note_enqueued(2, {"a"})
    assert index.live_positions("a") == [0, 2]
    assert index.live_positions("b") == [0, 1]
    assert index.last_writer_before("a", 2) == 0
    assert index.last_writer_before("a", 3) == 2
    assert index.last_writer_before("b", 1) == 0
    assert index.last_writer_before("b", 0) == -1
    assert index.last_writer_before("missing", 10) == -1


def test_writer_index_gc_across_commits():
    """Advancing the commit frontier prunes exactly the committed
    prefix of each written object's position list."""
    index = WriterIndex()
    for pos in range(6):
        index.note_enqueued(pos, {"x"} if pos % 2 == 0 else {"x", "y"})
    # Commit positions 0 and 1 (frontier -> base_pos 2).
    index.note_dequeued({"x"}, 1)
    index.note_dequeued({"x", "y"}, 2)
    assert index.live_positions("x") == [2, 3, 4, 5]
    assert index.live_positions("y") == [3, 5]
    assert index.last_writer_before("x", 10) == 5
    assert index.last_writer_before("x", 2) == -1  # committed writers gone
    # Commit everything: index drains to empty.
    for pos in range(2, 6):
        index.note_dequeued({"x", "y"}, pos + 1)
    assert len(index) == 0
    assert index.last_writer_before("x", 100) == -1
    assert index.last_writer_before("y", 100) == -1


def test_writer_index_gc_compacts_long_prefixes():
    index = WriterIndex()
    total = 500
    for pos in range(total):
        index.note_enqueued(pos, {"hot"})
    for pos in range(total - 1):
        index.note_dequeued({"hot"}, pos + 1)
    assert index.live_positions("hot") == [total - 1]
    # The internal list must not retain the full committed prefix.
    assert len(index._writers["hot"]) < total


def test_writer_index_gc_on_dropped_entries():
    """Dropped (valid=False) entries leave the queue without committing;
    their writer positions must still be pruned."""
    index = WriterIndex()
    index.note_enqueued(0, {"a"})
    index.note_enqueued(1, {"a"})
    index.note_dequeued({"a"}, 1)  # pos 0 dropped, frontier at 1
    assert index.live_positions("a") == [1]


# ----------------------------------------------------------------------
# WriterIndex-driven closure == brute-force closure (randomized)
# ----------------------------------------------------------------------
class _SetsAction(Action):
    def __init__(self, action_id, reads, writes):
        super().__init__(
            action_id,
            reads=frozenset(reads) | frozenset(writes),
            writes=frozenset(writes),
        )

    def compute(self, store):
        return {}


def _random_queue(rng, num_entries, num_objects, base_pos=0):
    entries = []
    index = WriterIndex()
    for offset in range(num_entries):
        pos = base_pos + offset
        owner = rng.randrange(num_objects)
        reads = {f"o:{rng.randrange(num_objects)}" for _ in range(rng.randrange(3))}
        action = _SetsAction(ActionId(owner, pos), reads, {f"o:{owner}"})
        entry = QueueEntry(pos, action, arrived_at=float(pos))
        entry.valid = rng.random() > 0.1  # ~10% dropped entries
        entries.append(entry)
        index.note_enqueued(pos, action.writes)
    return entries, index


def test_indexed_closure_matches_brute_force_on_random_queues():
    rng = random.Random(42)
    for trial in range(30):
        base_pos = rng.randrange(0, 50)
        entries, index = _random_queue(rng, 60, 12, base_pos=base_pos)
        # Random pre-existing sent state for a few clients.
        for entry in entries:
            for client in range(3):
                if rng.random() < 0.2:
                    entry.sent.add(client)
        candidate_index = rng.randrange(len(entries))
        if entries[candidate_index].valid is False:
            continue
        client_id = rng.randrange(3)
        if client_id in entries[candidate_index].sent:
            continue
        import copy

        brute_entries = copy.deepcopy(entries)
        brute_chain, brute_seed = transitive_closure(
            brute_entries, candidate_index, client_id
        )
        indexed_chain, indexed_seed = transitive_closure(
            entries, candidate_index, client_id,
            writer_index=index, base_pos=base_pos,
        )
        assert indexed_chain == brute_chain, f"trial {trial}"
        assert indexed_seed == brute_seed, f"trial {trial}"
        assert [sorted(e.sent) for e in entries] == [
            sorted(e.sent) for e in brute_entries
        ], f"trial {trial}"


# ----------------------------------------------------------------------
# ClientSpatialIndex
# ----------------------------------------------------------------------
def test_spatial_client_index_candidates_within_radius():
    index = ClientSpatialIndex()
    index.note_radius(5.0)
    index.update(1, Vec2(0.0, 0.0))
    index.update(2, Vec2(30.0, 0.0))
    index.update(3, Vec2(200.0, 200.0))
    found = set(index.candidates(Vec2(10.0, 0.0), 25.0))
    assert found == {1, 2}
    assert index.max_client_radius == 5.0


def test_spatial_client_index_positionless_clients_always_candidates():
    index = ClientSpatialIndex()
    index.update(1, Vec2(0.0, 0.0))
    index.update(9, None)  # no committed avatar position
    found = set(index.candidates(Vec2(500.0, 500.0), 10.0))
    assert found == {9}
    assert index.positionless_count == 1
    # Gaining a position moves it out of the conservative set.
    index.update(9, Vec2(500.0, 500.0))
    assert index.positionless_count == 0
    assert set(index.candidates(Vec2(500.0, 500.0), 10.0)) == {9}


def test_spatial_client_index_update_and_remove():
    index = ClientSpatialIndex()
    index.update(1, Vec2(0.0, 0.0))
    assert set(index.candidates(Vec2(0.0, 0.0), 1.0)) == {1}
    index.update(1, Vec2(100.0, 100.0))  # moved by a commit
    assert set(index.candidates(Vec2(0.0, 0.0), 1.0)) == set()
    assert set(index.candidates(Vec2(100.0, 100.0), 1.0)) == {1}
    index.remove(1)
    assert set(index.candidates(Vec2(100.0, 100.0), 1.0)) == set()
    assert len(index) == 0


def test_spatial_client_index_boundary_is_conservative():
    """A client exactly on the Equation (1) boundary must be a
    candidate — the query inflates the radius so rounding can only ever
    add candidates, never lose them."""
    index = ClientSpatialIndex()
    index.update(1, Vec2(30.0, 40.0))  # distance 50 exactly
    assert set(index.candidates(Vec2(0.0, 0.0), 50.0)) == {1}
