"""Unit tests for the client-side protocol (Algorithms 1, 3, 4).

These drive a single ProtocolClient against a hand-rolled fake server so
every step of the pseudocode is observable: optimistic evaluation, the
pending queue, stable application, write propagation outside WS(Q),
reconciliation, completions, and aborts.
"""

from __future__ import annotations

import pytest

from repro.core.action import Action, ActionId, ActionResult, BlindWrite
from repro.core.client import ClientConfig, ProtocolClient
from repro.core.messages import (
    AbortNotice,
    ActionBatch,
    Completion,
    OrderedAction,
    SubmitAction,
)
from repro.errors import ActionAborted, ProtocolError
from repro.net.host import Host
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore
from repro.types import SERVER_ID


class AddAction(Action):
    """counter += amount; aborts if the counter is negative."""

    def __init__(self, action_id, amount, oid="counter:0"):
        super().__init__(
            action_id,
            reads=frozenset({oid}),
            writes=frozenset({oid}),
            cost_ms=1.0,
        )
        self.amount = amount
        self.oid = oid

    def compute(self, store):
        value = int(store.get(self.oid)["value"])
        if value < 0:
            raise ActionAborted("negative")
        return {self.oid: {"value": value + self.amount}}


class Harness:
    """One client + a scripted server endpoint."""

    def __init__(self, **config):
        self.sim = Simulator()
        self.network = Network(self.sim, rtt_ms=100.0)
        self.server_inbox = []
        self.network.register(
            SERVER_ID, lambda src, msg: self.server_inbox.append((src, msg))
        )
        store = ObjectStore(
            [
                WorldObject("counter:0", {"value": 0}),
                WorldObject("other:0", {"value": 100}),
            ]
        )
        self.client = ProtocolClient(
            self.sim,
            self.network,
            Host(self.sim, 0),
            0,
            store,
            config=ClientConfig(**config),
        )
        self.confirmed = []
        self.aborted = []
        self.client.on_confirmed = lambda a, ms: self.confirmed.append((a, ms))
        self.client.on_aborted = lambda aid: self.aborted.append(aid)

    def deliver(self, *entries, last_installed=-1):
        """Hand the client a batch as if the server sent it."""
        batch = ActionBatch(tuple(entries), last_installed=last_installed)
        self.network.send(SERVER_ID, 0, batch, 10)
        self.sim.run()

    def submitted_actions(self):
        return [m.action for _, m in self.server_inbox if isinstance(m, SubmitAction)]

    def completions(self):
        return [m for _, m in self.server_inbox if isinstance(m, Completion)]


def test_submit_applies_optimistically_and_sends():
    h = Harness()
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    assert h.client.optimistic.get("counter:0")["value"] == 5
    assert h.client.stable.get("counter:0")["value"] == 0  # untouched
    assert h.client.pending_count == 1
    h.sim.run()
    assert h.submitted_actions() == [action]


def test_next_action_id_monotonic():
    h = Harness()
    ids = [h.client.next_action_id() for _ in range(3)]
    assert ids == [ActionId(0, 0), ActionId(0, 1), ActionId(0, 2)]


def test_submitting_foreign_action_rejected():
    h = Harness()
    foreign = AddAction(ActionId(9, 0), 1)
    with pytest.raises(ProtocolError):
        h.client.submit(foreign)


def test_own_action_confirmed_pops_queue_and_measures_response():
    h = Harness()
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    h.sim.run()
    h.deliver(OrderedAction(0, action))
    assert h.client.pending_count == 0
    assert h.client.stable.get("counter:0")["value"] == 5
    assert len(h.confirmed) == 1
    _, response_ms = h.confirmed[0]
    assert response_ms > 0
    assert h.client.stats.mismatches == 0


def test_remote_action_applies_to_stable_and_propagates():
    h = Harness()
    remote = AddAction(ActionId(2, 0), 7)
    h.deliver(OrderedAction(0, remote))
    assert h.client.stable.get("counter:0")["value"] == 7
    # No pending writes -> optimistic mirror updated too.
    assert h.client.optimistic.get("counter:0")["value"] == 7
    assert h.client.stats.stable_evaluations == 1


def test_remote_write_not_propagated_inside_ws_q():
    h = Harness()
    own = AddAction(h.client.next_action_id(), 5)
    h.client.submit(own)  # counter in WS(Q), optimistic = 5
    remote = AddAction(ActionId(2, 0), 100)
    h.deliver(OrderedAction(0, remote))
    # Stable moves to 100, optimistic keeps the local guess (Algorithm 4
    # step 4: x in WS(Q) is awaiting its permanent value).
    assert h.client.stable.get("counter:0")["value"] == 100
    assert h.client.optimistic.get("counter:0")["value"] == 5


def test_mismatch_triggers_reconciliation():
    h = Harness()
    own = AddAction(h.client.next_action_id(), 5)
    h.client.submit(own)  # optimistic: 0 -> 5
    remote = AddAction(ActionId(2, 0), 100)
    # Server serialized the remote action first: stable plays 100 then 105.
    h.deliver(OrderedAction(0, remote), OrderedAction(1, own))
    assert h.client.stable.get("counter:0")["value"] == 105
    assert h.client.optimistic.get("counter:0")["value"] == 105
    assert h.client.stats.mismatches == 1
    assert h.client.stats.reconciliations == 1
    assert h.client.pending_count == 0


def test_reconciliation_replays_remaining_queue():
    h = Harness()
    first = AddAction(h.client.next_action_id(), 5)
    second = AddAction(h.client.next_action_id(), 3)
    h.client.submit(first)   # optimistic 5
    h.client.submit(second)  # optimistic 8
    remote = AddAction(ActionId(2, 0), 100)
    h.deliver(OrderedAction(0, remote), OrderedAction(1, first))
    # first confirmed with mismatch (105 vs 5); second replayed on top.
    assert h.client.stable.get("counter:0")["value"] == 105
    assert h.client.optimistic.get("counter:0")["value"] == 108
    assert h.client.pending_count == 1


def test_blind_write_installs_new_objects():
    h = Harness()
    blind = BlindWrite.from_server(0, {"new:0": {"value": 1}})
    h.deliver(OrderedAction(-1, blind))
    assert h.client.stable.get("new:0")["value"] == 1
    assert h.client.optimistic.get("new:0")["value"] == 1
    assert h.client.stats.blind_writes_applied == 1


def test_completions_sent_in_incomplete_mode():
    h = Harness(send_completions=True)
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    h.sim.run()
    h.deliver(OrderedAction(3, action))
    completions = h.completions()
    assert len(completions) == 1
    assert completions[0].pos == 3
    assert completions[0].action_id == action.action_id
    assert completions[0].result == ActionResult.of({"counter:0": {"value": 5}})


def test_no_completions_in_basic_mode():
    h = Harness(send_completions=False)
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    h.sim.run()
    h.deliver(OrderedAction(0, action))
    assert h.completions() == []


def test_report_all_completions_mode():
    h = Harness(send_completions=True, report_all_completions=True)
    remote = AddAction(ActionId(2, 0), 7)
    h.deliver(OrderedAction(4, remote))
    completions = h.completions()
    assert len(completions) == 1
    assert completions[0].pos == 4
    assert completions[0].reporter == 0


def test_abort_rolls_back_optimistic_state():
    h = Harness()
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    assert h.client.optimistic.get("counter:0")["value"] == 5
    h.network.send(SERVER_ID, 0, AbortNotice(action.action_id), 10)
    h.sim.run()
    assert h.client.pending_count == 0
    assert h.client.optimistic.get("counter:0")["value"] == 0
    assert h.client.stats.aborted == 1
    assert h.aborted == [action.action_id]


def test_abort_replays_surviving_actions():
    h = Harness()
    first = AddAction(h.client.next_action_id(), 5)
    second = AddAction(h.client.next_action_id(), 3)
    h.client.submit(first)
    h.client.submit(second)
    h.network.send(SERVER_ID, 0, AbortNotice(first.action_id), 10)
    h.sim.run()
    assert h.client.pending_count == 1
    assert h.client.optimistic.get("counter:0")["value"] == 3  # only second


def test_abort_for_unknown_action_is_harmless():
    h = Harness()
    h.network.send(SERVER_ID, 0, AbortNotice(ActionId(0, 99)), 10)
    h.sim.run()
    assert h.client.stats.aborted == 0


def test_duplicate_position_delivery_raises():
    h = Harness()
    remote = AddAction(ActionId(2, 0), 1)
    h.deliver(OrderedAction(0, remote))
    with pytest.raises(ProtocolError):
        h.deliver(OrderedAction(0, AddAction(ActionId(2, 1), 1)))


def test_own_action_out_of_order_raises():
    h = Harness()
    first = AddAction(h.client.next_action_id(), 1)
    second = AddAction(h.client.next_action_id(), 2)
    h.client.submit(first)
    h.client.submit(second)
    with pytest.raises(ProtocolError):
        h.deliver(OrderedAction(0, second))  # head is `first`


def test_gc_frontier_prunes_dedup_positions():
    h = Harness()
    remote = AddAction(ActionId(2, 0), 1)
    h.deliver(OrderedAction(0, remote))
    assert 0 in h.client._applied_positions
    later = AddAction(ActionId(2, 1), 1)
    h.deliver(OrderedAction(5, later), last_installed=3)
    assert 0 not in h.client._applied_positions
    assert 5 in h.client._applied_positions


def test_optimistic_eval_tolerates_missing_reads():
    h = Harness()
    action = AddAction(h.client.next_action_id(), 1, oid="ghost:0")
    h.client.submit(action)  # must not raise
    assert h.client.pending_count == 1
    _, optimistic_result = h.client.queue.head()
    assert optimistic_result.aborted


def test_eval_cost_charged_to_cpu():
    h = Harness()
    action = AddAction(h.client.next_action_id(), 5)
    h.client.submit(action)
    # Optimistic evaluation cost (1.0 + 1.9 overhead) is on the CPU.
    assert h.client.host.busy
    h.sim.run()
    assert h.client.host.cpu_time_used == pytest.approx(2.9)
