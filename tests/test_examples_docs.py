"""Smoke tests: the example scripts run to completion, and the inline
doctests in the utility modules hold."""

from __future__ import annotations

import doctest
import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_arrow_of_time_example(capsys):
    run_example("arrow_of_time.py")
    out = capsys.readouterr().out
    assert "Is archer A alive?" in out
    assert "DEAD" in out   # the RING anomaly showed
    assert "alive" in out  # and SEVE's consistent outcome


def test_scrying_spell_example(capsys):
    run_example("scrying_spell.py")
    out = capsys.readouterr().out
    assert "Crowd health" in out
    assert "0 violations" in out       # SEVE consistent
    assert "DIVERGED" in out           # RING not


def test_dining_philosophers_example(capsys):
    run_example("dining_philosophers.py", argv=["10"])
    out = capsys.readouterr().out
    assert "Dining philosophers" in out
    assert "unbounded" in out


def test_quickstart_example(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "SEVE vs Central" in out
    assert "yes" in out  # everything consistent


@pytest.mark.parametrize(
    "module_name",
    ["repro.types", "repro.core.interest"],
)
def test_doctests(module_name):
    import importlib

    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0
