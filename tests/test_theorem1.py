"""Theorem 1, empirically: across seeds, modes and worlds, no client
replica ever holds a value that was never committed.

These are the paper's correctness claim turned into a property of whole
runs, plus distributed *mid-run* snapshots (the theorem speaks about any
distributed snapshot, not just quiescence).
"""

from __future__ import annotations

import pytest

from repro.core.engine import SeveConfig, SeveEngine
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload
from repro.harness.architectures import build_engine, build_world
from repro.metrics.consistency import ConsistencyChecker
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("mode", ["seve", "seve-naive", "incomplete"])
def test_theorem1_across_seeds_and_modes(mode, seed):
    settings = SimulationSettings(
        num_clients=8,
        num_walls=150,
        moves_per_client=10,
        world_width=250.0,
        world_height=250.0,
        spawn_extent=70.0,
        seed=seed,
    )
    result = run_simulation(mode, settings)
    assert result.consistency is not None
    assert result.consistency.consistent, result.consistency.violations[:3]


def test_theorem1_under_heavy_dropping():
    """Aggressive threshold: many aborts, still never inconsistent."""
    settings = SimulationSettings(
        num_clients=10,
        num_walls=100,
        moves_per_client=10,
        world_width=200.0,
        world_height=200.0,
        spawn_extent=40.0,
        threshold=3.0,
        seed=5,
    )
    result = run_simulation("seve", settings)
    assert result.drop_percent > 0  # the regime actually drops
    assert result.consistency.consistent


def test_theorem1_holds_at_mid_run_snapshots():
    settings = SimulationSettings(
        num_clients=6,
        num_walls=100,
        moves_per_client=12,
        world_width=200.0,
        world_height=200.0,
        spawn_extent=60.0,
        seed=9,
    )
    world = build_world(settings)
    engine = build_engine("seve", settings, world)
    workload = MoveWorkload(engine, world, settings)
    engine.start()
    workload.install()

    reports = []

    def snapshot():
        checker = ConsistencyChecker(engine.state)
        replicas = {cid: c.stable for cid, c in engine.clients.items()}
        reports.append(checker.check_all(replicas))

    engine.sim.call_every(400.0, snapshot, stop_at=3200.0)
    engine.run(until=settings.workload_duration_ms + 1000)
    engine.run_to_quiescence()
    assert len(reports) >= 8
    for report in reports:
        # Mid-run, a replica may briefly be AHEAD of the server's commit
        # frontier (it applied a sent action whose completion is still in
        # flight).  Such values become committed soon after; here we only
        # require that nothing *diverged*: every violation must later
        # have become a committed version.
        pass
    final_checker = ConsistencyChecker(engine.state)
    for report in reports:
        for violation in report.violations:
            history = [
                attrs
                for _, _, attrs in engine.state.history(violation.oid)
            ]
            assert violation.held in history, (
                "mid-run value never committed: replica diverged"
            )


def test_theorem1_with_fault_tolerant_completions():
    world = ManhattanWorld(
        6,
        ManhattanConfig(
            width=200.0, height=200.0, num_walls=50, spawn="cluster",
            spawn_extent=50.0, seed=2,
        ),
    )
    engine = SeveEngine(
        world, 6, SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0,
                             fault_tolerant=True)
    )
    engine.start(stop_at=30_000)
    for cid in engine.clients:
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": 6}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(
                world.plan_move(
                    client.optimistic, cid, client.next_action_id(), cost_ms=1.0
                )
            )

        engine.sim.call_every(150.0, submit, start_delay=5.0 + cid, stop_at=1300.0)
    engine.run(until=2000.0)
    engine.run_to_quiescence()
    checker = ConsistencyChecker(engine.state)
    report = checker.check_all({cid: c.stable for cid, c in engine.clients.items()})
    assert report.consistent
