"""Unit tests for the link and network models."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.types import SERVER_ID


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------
def test_latency_only_delivery(sim):
    link = Link(sim, 0, 1, latency_ms=50.0)
    arrivals = []
    link.transmit(100, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [50.0]


def test_serialization_delay_adds_to_latency(sim):
    # 1000 bytes at 100 kbps = 8000 bits / 100000 bps = 80 ms on the wire.
    link = Link(sim, 0, 1, latency_ms=50.0, bandwidth_bps=100_000)
    arrivals = []
    link.transmit(1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(130.0)]


def test_messages_queue_behind_each_other(sim):
    link = Link(sim, 0, 1, latency_ms=0.0, bandwidth_bps=100_000)
    arrivals = []
    link.transmit(1000, lambda: arrivals.append(("a", sim.now)))
    link.transmit(1000, lambda: arrivals.append(("b", sim.now)))
    sim.run()
    assert arrivals == [("a", pytest.approx(80.0)), ("b", pytest.approx(160.0))]


def test_fifo_even_with_mixed_sizes(sim):
    link = Link(sim, 0, 1, latency_ms=10.0, bandwidth_bps=100_000)
    arrivals = []
    link.transmit(5000, lambda: arrivals.append("big"))
    link.transmit(10, lambda: arrivals.append("small"))
    sim.run()
    assert arrivals == ["big", "small"]


def test_infinite_bandwidth_no_serialization(sim):
    link = Link(sim, 0, 1, latency_ms=5.0, bandwidth_bps=None)
    assert link.serialization_delay(10**9) == 0.0


def test_queue_delay_reflects_backlog(sim):
    link = Link(sim, 0, 1, latency_ms=0.0, bandwidth_bps=100_000)
    link.transmit(1000, lambda: None)
    assert link.queue_delay() == pytest.approx(80.0)


def test_negative_latency_rejected(sim):
    with pytest.raises(NetworkError):
        Link(sim, 0, 1, latency_ms=-1.0)


def test_negative_size_rejected(sim):
    link = Link(sim, 0, 1, latency_ms=1.0)
    with pytest.raises(NetworkError):
        link.transmit(-5, lambda: None)


def test_delivery_counter(sim):
    link = Link(sim, 0, 1, latency_ms=1.0)
    link.transmit(1, lambda: None)
    link.transmit(1, lambda: None)
    sim.run()
    assert link.delivered == 2
    assert link.in_flight == 0


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------
def test_send_client_to_server(sim):
    net = Network(sim, rtt_ms=100.0)
    received = []
    net.register(SERVER_ID, lambda src, msg: received.append((src, msg, sim.now)))
    net.register(0, lambda src, msg: None)
    net.send(0, SERVER_ID, "hello", 10)
    sim.run()
    assert received == [(0, "hello", 50.0)]  # one-way = RTT / 2


def test_round_trip_takes_rtt(sim):
    net = Network(sim, rtt_ms=100.0)
    done = []
    net.register(SERVER_ID, lambda src, msg: net.send(SERVER_ID, src, "pong", 10))
    net.register(0, lambda src, msg: done.append(sim.now))
    net.send(0, SERVER_ID, "ping", 10)
    sim.run()
    assert done == [pytest.approx(100.0)]


def test_duplicate_registration_rejected(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(0, lambda src, msg: None)
    with pytest.raises(NetworkError):
        net.register(0, lambda src, msg: None)


def test_unregistered_sender_rejected(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    with pytest.raises(NetworkError):
        net.send(0, SERVER_ID, "x", 1)


def test_message_to_departed_host_dropped_silently(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    received = []
    net.register(0, lambda src, msg: received.append(msg))
    net.send(SERVER_ID, 0, "x", 1)
    net.unregister(0)
    sim.run()
    assert received == []


def test_traffic_metered_per_message(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    net.register(0, lambda src, msg: None)
    net.send(0, SERVER_ID, "a", 100)
    net.send(SERVER_ID, 0, "b", 200)
    assert net.meter.total_bytes == 300
    assert net.meter.total_messages == 2
    assert net.meter.bytes_sent[0] == 100
    assert net.meter.bytes_received[0] == 200
    assert net.meter.host_bytes(0) == 300


def test_broadcast_meters_every_destination(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    received = []
    for cid in range(3):
        net.register(cid, lambda src, msg, cid=cid: received.append(cid))
    net.broadcast_from_server("x", 50)
    sim.run()
    assert sorted(received) == [0, 1, 2]
    assert net.meter.total_bytes == 150


def test_broadcast_exclude(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    received = []
    for cid in range(3):
        net.register(cid, lambda src, msg, cid=cid: received.append(cid))
    net.broadcast_from_server("x", 50, exclude=1)
    sim.run()
    assert sorted(received) == [0, 2]


def test_per_client_bandwidth_is_independent(sim):
    # Two clients each push 1000 bytes; with per-client 100 kbps uplinks
    # they serialize in parallel and both arrive at 80ms + latency.
    net = Network(sim, rtt_ms=0.0, bandwidth_bps=100_000)
    arrivals = []
    net.register(SERVER_ID, lambda src, msg: arrivals.append((src, sim.now)))
    net.register(0, lambda src, msg: None)
    net.register(1, lambda src, msg: None)
    net.send(0, SERVER_ID, "a", 1000)
    net.send(1, SERVER_ID, "b", 1000)
    sim.run()
    assert arrivals == [(0, pytest.approx(80.0)), (1, pytest.approx(80.0))]


def test_link_lookup_missing_raises(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    with pytest.raises(NetworkError):
        net.link(0, SERVER_ID)


def test_hosts_listing(sim):
    net = Network(sim, rtt_ms=10.0)
    net.register(SERVER_ID, lambda src, msg: None)
    net.register(3, lambda src, msg: None)
    assert sorted(net.hosts) == [SERVER_ID, 3]
