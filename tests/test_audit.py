"""Tests for the audit log, cheat detectors, and history replay."""

from __future__ import annotations

import pytest

from repro.core.engine import SeveConfig, SeveEngine
from repro.metrics.audit import AuditLog
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


# ---------------------------------------------------------------------------
# Unit: detectors
# ---------------------------------------------------------------------------
def test_record_appends_and_roundtrips():
    log = AuditLog()
    log.record(0, 1, 100.0, {"avatar:1": {"x": 5.0, "y": 0.0}})
    assert len(log) == 1
    assert log.records[0].values() == {"avatar:1": {"x": 5.0, "y": 0.0}}
    assert log.records[0].client_id == 1


def test_speed_hack_detected():
    log = AuditLog(max_speed=10.0)
    log.record(0, 1, 0.0, {"avatar:1": {"x": 0.0, "y": 0.0}})
    # 500 units in 300ms at max speed 10 u/s: blatant teleport.
    log.record(1, 1, 300.0, {"avatar:1": {"x": 500.0, "y": 0.0}})
    assert len(log.alerts) == 1
    alert = log.alerts[0]
    assert alert.kind == "speed"
    assert alert.client_id == 1
    assert "avatar:1" in alert.detail


def test_legal_speed_not_flagged():
    log = AuditLog(max_speed=10.0)
    log.record(0, 1, 0.0, {"avatar:1": {"x": 0.0, "y": 0.0}})
    log.record(1, 1, 300.0, {"avatar:1": {"x": 3.0, "y": 0.0}})  # 10 u/s
    log.record(2, 1, 600.0, {"avatar:1": {"x": 6.0, "y": 0.0}})
    assert log.alerts == []


def test_damage_hack_detected():
    log = AuditLog(max_damage=25)
    log.record(0, 2, 0.0, {"avatar:3": {"health": 100}})
    log.record(1, 2, 100.0, {"avatar:3": {"health": 10}})  # 90 damage
    assert [a.kind for a in log.alerts] == ["damage"]


def test_legal_damage_not_flagged():
    log = AuditLog(max_damage=25)
    log.record(0, 2, 0.0, {"avatar:3": {"health": 100}})
    log.record(1, 2, 100.0, {"avatar:3": {"health": 75}})
    log.record(2, 2, 200.0, {"avatar:3": {"health": 100}})  # healing is fine
    assert log.alerts == []


def test_rate_hack_detected():
    log = AuditLog(min_action_interval_ms=300.0)
    for i in range(6):
        log.record(i, 4, float(i) * 10.0, {"o:0": {"v": i}})
    assert any(a.kind == "rate" for a in log.alerts)
    assert log.alerts_for(4)
    assert log.alerts_for(5) == []


def test_commit_bursts_not_flagged_as_rate_hack():
    # In-order commit frontiers release batches: two commits 0ms apart
    # are normal as long as the average rate is legal.
    log = AuditLog(min_action_interval_ms=300.0)
    times = [0.0, 300.0, 600.0, 601.0, 900.0, 1200.0]
    for i, t in enumerate(times):
        log.record(i, 4, t, {"o:0": {"v": i}})
    assert log.alerts == []


def test_detectors_disabled_by_default():
    log = AuditLog()
    log.record(0, 1, 0.0, {"avatar:1": {"x": 0.0, "y": 0.0, "health": 100}})
    log.record(1, 1, 1.0, {"avatar:1": {"x": 9999.0, "y": 0.0, "health": 0}})
    assert log.alerts == []


def test_replay_reconstructs_history():
    initial = ObjectStore([WorldObject("o:0", {"v": 0, "w": 7})])
    log = AuditLog()
    log.record(0, 1, 0.0, {"o:0": {"v": 1}})
    log.record(1, 2, 1.0, {"o:0": {"v": 2}})
    replayed = log.replay(initial)
    assert replayed.get("o:0")["v"] == 2
    assert replayed.get("o:0")["w"] == 7  # untouched attribute survives
    assert initial.get("o:0")["v"] == 0  # replay does not mutate input


# ---------------------------------------------------------------------------
# Integration: audit attached to a SEVE run
# ---------------------------------------------------------------------------
def run_audited(num_clients=6, moves=8):
    world = ManhattanWorld(
        num_clients,
        ManhattanConfig(width=200.0, height=200.0, num_walls=30,
                        spawn="cluster", spawn_extent=50.0, seed=17),
    )
    engine = SeveEngine(
        world, num_clients,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0, enable_audit=True),
    )
    engine.start(stop_at=60_000)
    for cid in range(num_clients):
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": moves}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            ))

        engine.sim.call_every(150.0, submit, start_delay=3.0 + cid,
                              stop_at=150.0 * (moves + 2))
    engine.run(until=150.0 * (moves + 2))
    engine.run_to_quiescence()
    return world, engine


def test_audit_records_every_commit():
    world, engine = run_audited()
    assert engine.audit is not None
    assert len(engine.audit) == engine.server.stats.actions_committed


def test_honest_clients_raise_no_alerts():
    world, engine = run_audited()
    assert engine.audit.alerts == []


def test_replay_matches_authoritative_state():
    world, engine = run_audited()
    initial = ObjectStore(world.initial_objects())
    replayed = engine.audit.replay(initial)
    for obj in engine.state.objects():
        assert replayed.get(obj.oid) == obj, obj.oid


def test_audit_disabled_by_default():
    world = ManhattanWorld(2, ManhattanConfig(num_walls=0))
    engine = SeveEngine(world, 2, SeveConfig(mode="seve"))
    assert engine.audit is None
