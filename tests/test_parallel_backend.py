"""Parallel execution backend: differential identity and unit behavior.

The load-bearing guarantee (docs/parallel.md): for the same settings and
seed, ``backend="parallel"`` produces results identical to
``backend="inproc"`` — not statistically close, *identical* on every
deterministic output.  Both backends run the same windowed partition
schedule; the only difference is whether partition replicas step inline
or in spawned worker processes, so any divergence is a transport or
merge bug, never "expected noise".

Multiprocessing note: workers use the ``spawn`` start method and
re-import ``__main__``; under pytest that is pytest's own entry point,
which is importable, so these tests need no guard beyond running via
pytest or a real script file (never a stdin heredoc).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.net.backend import resolve_workers, spawn_context, worker_of_shard
from repro.net.faults import FaultPlan

#: Small-but-sharded workload: big enough to exercise cross-shard span
#: forwarding, handoff, and the sequencer; small enough to keep the
#: spawned-worker differentials fast.
BASE = dict(
    num_clients=8,
    num_walls=120,
    moves_per_client=6,
    world_width=300.0,
    world_height=300.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=200.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
)

LOSSY = FaultPlan(loss_rate=0.05, jitter_ms=40.0, duplicate_rate=0.02, seed=7)


def result_key(r):
    """Every deterministic output of a run (wall clock excluded)."""
    return (
        r.moves_submitted,
        r.responses_observed,
        tuple(
            round(x, 9)
            for x in (r.response.mean, r.response.p95, r.response.stddev)
        ),
        round(r.total_traffic_kb, 9),
        round(r.client_traffic_kb, 9),
        round(r.server_traffic_kb, 9),
        r.drop_percent,
        r.virtual_ms,
        r.events,
        r.total_cpu_ms,
        r.closure_cpu_ms,
        r.messages_dropped,
        r.messages_duplicated,
        r.retransmissions,
        tuple(
            tuple(sorted(row.items())) for row in (r.shard_rows or ())
        ),
        None if r.consistency is None else r.consistency.consistent,
        None if r.shard_audit is None else r.shard_audit.consistent,
    )


def run(backend, plan=None, **overrides):
    settings = SimulationSettings(
        **{**BASE, **overrides}, backend=backend, fault_plan=plan
    )
    return run_simulation("seve", settings)


# ----------------------------------------------------------------------
# Unit behavior: worker resolution and shard ownership
# ----------------------------------------------------------------------
def test_resolve_workers():
    def settings(**kw):
        return SimulationSettings(**{**BASE, **kw})

    # inproc default: one partition — the classic single-engine path.
    assert resolve_workers(settings(shards=4)) == 1
    # parallel default: one worker per shard.
    assert resolve_workers(settings(shards=4, backend="parallel")) == 4
    # explicit worker counts clamp to the shard count.
    assert resolve_workers(settings(shards=4, workers=2)) == 2
    assert resolve_workers(settings(shards=2, workers=8)) == 2
    assert (
        resolve_workers(settings(shards=4, backend="parallel", workers=3))
        == 3
    )


def test_worker_of_shard_partitions_contiguously():
    for shards in (1, 2, 3, 4, 8):
        for workers in range(1, shards + 1):
            owners = [worker_of_shard(k, shards, workers) for k in range(shards)]
            # every worker owns at least one shard, in non-decreasing order
            assert sorted(set(owners)) == list(range(workers))
            assert owners == sorted(owners)


def test_partitioned_run_requires_multiple_shards_and_workers():
    from repro.net.backend import run_partitioned

    with pytest.raises(ConfigurationError):
        run_partitioned("seve", SimulationSettings(**BASE, shards=1), parallel=False)


def test_spawn_context_uses_spawn_start_method():
    # fork would inherit the parent's RNG/module state and break the
    # Linux/macOS identity guarantee; the backend must pin spawn.
    context = spawn_context()
    assert isinstance(
        context, type(multiprocessing.get_context("spawn"))
    )
    assert context.get_start_method() == "spawn"


@pytest.mark.skip(
    reason="documents the start-method constraint: the parallel backend "
    "always uses multiprocessing spawn (never fork), so worker entry "
    "points must be importable — a __main__ loaded from stdin or an "
    "unguarded script cannot host a parallel run"
)
def test_fork_start_method_is_unsupported():
    pass


# ----------------------------------------------------------------------
# Differential identity: parallel == inproc, byte for byte
# ----------------------------------------------------------------------
def test_inline_windowed_matches_parallel_k2():
    # Same windowed schedule, inline vs spawned workers.
    inproc = run("inproc", workers=2, shards=2)
    parallel = run("parallel", workers=2, shards=2)
    assert result_key(inproc) == result_key(parallel)
    assert inproc.shard_audit.consistent and parallel.shard_audit.consistent


def test_parallel_matches_inproc_k2_lossy():
    inproc = run("inproc", plan=LOSSY, workers=2, shards=2)
    parallel = run("parallel", plan=LOSSY, workers=2, shards=2)
    assert result_key(inproc) == result_key(parallel)
    assert parallel.messages_dropped > 0  # the plan actually fired


def test_parallel_matches_inproc_k1_whole_run_subprocess():
    # shards=1 degenerates to the whole classic run in one spawned
    # worker; results must still be identical to the local run.
    inproc = run("inproc", shards=1)
    parallel = run("parallel", shards=1)
    assert result_key(inproc) == result_key(parallel)


def test_parallel_matches_inproc_k4():
    inproc = run("inproc", workers=4, shards=4)
    parallel = run("parallel", workers=4, shards=4)
    assert result_key(inproc) == result_key(parallel)


def test_parallel_matches_inproc_workers_below_shards():
    # K=4 shards on W=2 workers: each worker owns two shards.
    inproc = run("inproc", workers=2, shards=4)
    parallel = run("parallel", workers=2, shards=4)
    assert result_key(inproc) == result_key(parallel)


# ----------------------------------------------------------------------
# Observer merging across workers
# ----------------------------------------------------------------------
def test_profile_merges_across_workers():
    profiled = run("parallel", shards=2, profile=True)
    assert profiled.profile is not None
    # phases from every worker land in one table, with real counts
    assert "sim.dispatch" in profiled.profile
    assert profiled.profile["sim.dispatch"]["count"] == profiled.events
    total_wall = sum(row["wall_ms"] for row in profiled.profile.values())
    assert total_wall > 0.0

    # observation must not perturb the run (determinism contract)
    unprofiled = run("parallel", shards=2)
    assert profiled.events == unprofiled.events
    assert result_key(profiled) == result_key(unprofiled)


def test_metrics_merge_across_workers(tmp_path):
    out = tmp_path / "metrics.json"
    result = run("parallel", shards=2, metrics_out=str(out))
    assert out.exists()
    baseline = run("inproc", shards=2, workers=2)
    assert result_key(result) == result_key(baseline)
