"""Unit tests for the basic serializer server (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.action import Action, ActionId
from repro.core.messages import ActionBatch, SubmitAction, wire_size
from repro.core.server_basic import BasicServer
from repro.errors import ProtocolError
from repro.net.host import Host
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.types import SERVER_ID


class Noop(Action):
    def __init__(self, action_id):
        super().__init__(action_id, reads=frozenset({"o"}), writes=frozenset())

    def compute(self, store):
        return {}


class Rig:
    def __init__(self, eager=False, clients=(0, 1, 2)):
        self.sim = Simulator()
        self.network = Network(self.sim, rtt_ms=100.0)
        self.server = BasicServer(
            self.sim, self.network, Host(self.sim, SERVER_ID), eager=eager
        )
        self.inboxes = {}
        for cid in clients:
            self.inboxes[cid] = []
            self.network.register(
                cid, lambda src, msg, cid=cid: self.inboxes[cid].append(msg)
            )
            self.server.attach_client(cid)
        self._seq = 0

    def submit(self, client_id):
        action = Noop(ActionId(client_id, self._seq))
        self._seq += 1
        message = SubmitAction(action)
        self.network.send(client_id, SERVER_ID, message, wire_size(message))
        return action

    def received_positions(self, client_id):
        positions = []
        for batch in self.inboxes[client_id]:
            assert isinstance(batch, ActionBatch)
            positions.extend(entry.pos for entry in batch.entries)
        return positions


def test_actions_get_sequential_positions():
    rig = Rig()
    a = rig.submit(0)
    b = rig.submit(1)
    rig.sim.run()
    assert rig.server.queue_length == 2
    assert rig.server.queue[0] is a
    assert rig.server.queue[1] is b


def test_reply_window_covers_unseen_actions():
    rig = Rig()
    rig.submit(0)
    rig.sim.run()
    # Client 0 submitted the first action: receives [0].
    assert rig.received_positions(0) == [0]
    rig.submit(1)
    rig.sim.run()
    # Client 1 had seen nothing: receives [0, 1].
    assert rig.received_positions(1) == [0, 1]
    rig.submit(0)
    rig.sim.run()
    # Client 0 had seen up to 0: receives [1, 2].
    assert rig.received_positions(0) == [0, 1, 2]


def test_idle_clients_receive_nothing_in_lazy_mode():
    rig = Rig()
    rig.submit(0)
    rig.sim.run()
    assert rig.received_positions(2) == []


def test_eager_mode_broadcasts_to_everyone():
    rig = Rig(eager=True)
    rig.submit(0)
    rig.sim.run()
    for cid in (0, 1, 2):
        assert rig.received_positions(cid) == [0]
    rig.submit(1)
    rig.sim.run()
    for cid in (0, 1, 2):
        assert rig.received_positions(cid) == [0, 1]


def test_eager_mode_never_duplicates():
    rig = Rig(eager=True)
    for _ in range(5):
        rig.submit(0)
        rig.submit(1)
    rig.sim.run()
    for cid in (0, 1, 2):
        positions = rig.received_positions(cid)
        assert positions == sorted(set(positions)) == list(range(10))


def test_detached_client_not_served():
    rig = Rig(eager=True)
    rig.server.detach_client(2)
    rig.network.unregister(2)
    rig.submit(0)
    rig.sim.run()
    assert rig.received_positions(2) == []


def test_unattached_submission_raises():
    rig = Rig(clients=(0,))
    rig.network.register(9, lambda src, msg: None)
    message = SubmitAction(Noop(ActionId(9, 0)))
    rig.network.send(9, SERVER_ID, message, 10)
    with pytest.raises(ProtocolError):
        rig.sim.run()


def test_double_attach_raises():
    rig = Rig(clients=(0,))
    with pytest.raises(ProtocolError):
        rig.server.attach_client(0)


def test_stats_counters():
    rig = Rig(eager=True)
    rig.submit(0)
    rig.submit(1)
    rig.sim.run()
    assert rig.server.stats.actions_serialized == 2
    assert rig.server.stats.batches_sent == 6  # 2 actions x 3 clients
    assert rig.server.stats.actions_delivered == 6


def test_timestamp_cost_delays_serialization():
    rig = Rig()
    rig.server.timestamp_cost_ms = 10.0
    rig.submit(0)
    rig.sim.run()
    # one-way 50ms + 10ms server CPU + one-way 50ms back
    assert rig.sim.now == pytest.approx(110.0)


# ---------------------------------------------------------------------------
# Detach/eviction races (regression: dropped submissions used to burn
# the ActionId, absorbing the client's post-reattach resubmission as a
# "duplicate" forever)
# ---------------------------------------------------------------------------
def test_detached_submission_is_not_absorbed_as_duplicate():
    rig = Rig()
    rig.server.detach_client(0)
    action = rig.submit(0)
    rig.sim.run()
    assert rig.server.queue_length == 0
    rig.server.attach_client(0)
    message = SubmitAction(action)
    rig.network.send(0, SERVER_ID, message, wire_size(message))
    rig.sim.run()
    assert rig.server.queue_length == 1
    assert rig.server.queue[0] is action
    assert rig.server.stats.duplicate_submissions == 0


def test_eviction_between_receipt_and_serialize_unburns_action_id():
    rig = Rig()
    action = Noop(ActionId(0, 99))
    # Deliver directly, then detach before the host's serialize work
    # item runs — the raced-eviction window.
    rig.server._on_message(0, SubmitAction(action))
    rig.server.detach_client(0)
    rig.sim.run()
    assert rig.server.queue_length == 0
    rig.server.attach_client(0)
    message = SubmitAction(action)
    rig.network.send(0, SERVER_ID, message, wire_size(message))
    rig.sim.run()
    assert rig.server.queue_length == 1
    assert rig.server.stats.duplicate_submissions == 0
