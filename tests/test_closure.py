"""Unit tests for Algorithm 6 (transitive closure) and the known-values
tracker."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.action import Action, ActionId, ActionResult
from repro.core.closure import KnownValuesTracker, QueueEntry, transitive_closure
from repro.errors import ProtocolError


class SetsAction(Action):
    def __init__(self, action_id, reads, writes):
        super().__init__(action_id, reads=frozenset(reads) | frozenset(writes), writes=frozenset(writes))

    def compute(self, store):
        return {}


def entry(pos, reads, writes, client=0, valid=True, sent=()):
    queue_entry = QueueEntry(
        pos,
        SetsAction(ActionId(client, pos), reads, writes),
        arrived_at=float(pos),
        valid=valid,
    )
    queue_entry.sent |= set(sent)
    return queue_entry


C = 7  # the requesting client


def test_closure_includes_candidate_only_when_independent():
    entries = [entry(0, [], ["a"]), entry(1, [], ["b"])]
    chain, seed = transitive_closure(entries, 1, C)
    assert chain == [1]
    assert seed == frozenset({"b"})


def test_closure_walks_transitive_dependencies_in_order():
    entries = [
        entry(0, [], ["x"]),
        entry(1, ["x"], ["y"]),
        entry(2, ["y"], ["z"]),
    ]
    chain, seed = transitive_closure(entries, 2, C)
    assert chain == [0, 1, 2]
    assert seed == frozenset({"x", "y", "z"})
    # every chain member is now marked sent to C
    assert all(C in entries[i].sent for i in chain)


def test_closure_skips_dropped_entries():
    entries = [
        entry(0, [], ["x"], valid=False),
        entry(1, ["x"], ["y"]),
    ]
    chain, seed = transitive_closure(entries, 1, C)
    assert chain == [1]
    assert "x" in seed  # still needs a committed value for x


def test_closure_shrinks_seed_for_already_sent_entries():
    entries = [
        entry(0, [], ["x"], sent=[C]),
        entry(1, ["x"], ["y"]),
    ]
    chain, seed = transitive_closure(entries, 1, C)
    assert chain == [1]
    # C already has (or will compute) x from entry 0: no seeding needed.
    assert "x" not in seed


def test_closure_sent_shrink_prunes_older_writers():
    entries = [
        entry(0, [], ["x"]),          # older writer of x
        entry(1, [], ["x"], sent=[C]),  # newer writer, already at C
        entry(2, ["x"], ["y"]),
    ]
    chain, seed = transitive_closure(entries, 2, C)
    # x was removed from S by entry 1, so entry 0 must not join.
    assert chain == [2]
    assert "x" not in seed


def test_closure_candidate_already_sent_raises():
    entries = [entry(0, [], ["a"], sent=[C])]
    with pytest.raises(ProtocolError):
        transitive_closure(entries, 0, C)


def test_closure_dropped_candidate_raises():
    entries = [entry(0, [], ["a"], valid=False)]
    with pytest.raises(ProtocolError):
        transitive_closure(entries, 0, C)


def test_closure_read_modify_write_keeps_base_value_in_seed():
    # Chain member increments x (reads and writes it); the replica needs
    # x's committed base value to replay it.
    entries = [
        entry(0, ["x"], ["x"]),
        entry(1, ["x"], ["y"]),
    ]
    chain, seed = transitive_closure(entries, 1, C)
    assert chain == [0, 1]
    assert "x" in seed


# ---------------------------------------------------------------------------
# QueueEntry completion bookkeeping
# ---------------------------------------------------------------------------
def test_completion_recorded_and_ready():
    queue_entry = entry(0, [], ["a"])
    assert not queue_entry.committed_ready
    result = ActionResult.of({"a": {"v": 1}})
    queue_entry.record_completion(result, reporter=3)
    assert queue_entry.committed_ready
    assert queue_entry.reporters == {3}


def test_dropped_entry_is_ready_without_completion():
    queue_entry = entry(0, [], ["a"], valid=False)
    assert queue_entry.committed_ready


def test_conflicting_completions_raise():
    queue_entry = entry(0, [], ["a"])
    queue_entry.record_completion(ActionResult.of({"a": {"v": 1}}), reporter=1)
    queue_entry.record_completion(ActionResult.of({"a": {"v": 1}}), reporter=2)
    assert queue_entry.reporters == {1, 2}
    with pytest.raises(ProtocolError):
        queue_entry.record_completion(ActionResult.of({"a": {"v": 9}}), reporter=3)


# ---------------------------------------------------------------------------
# KnownValuesTracker
# ---------------------------------------------------------------------------
def test_tracker_seeds_initial_objects_once():
    tracker = KnownValuesTracker()
    assert tracker.needs(C, "a")
    tracker.record_blind_write(C, frozenset({"a"}))
    assert not tracker.needs(C, "a")


def test_tracker_requires_reseed_after_unseen_commit():
    tracker = KnownValuesTracker()
    tracker.record_blind_write(C, frozenset({"a"}))
    tracker.record_commit(5, frozenset({"a"}), recipients=set())  # C not in sent
    assert tracker.needs(C, "a")


def test_tracker_no_reseed_when_client_received_the_writer():
    tracker = KnownValuesTracker()
    tracker.record_blind_write(C, frozenset({"a"}))
    tracker.record_commit(5, frozenset({"a"}), recipients={C})
    assert not tracker.needs(C, "a")


def test_tracker_filter_seed():
    tracker = KnownValuesTracker()
    tracker.record_blind_write(C, frozenset({"a"}))
    assert tracker.filter_seed(C, frozenset({"a", "b"})) == frozenset({"b"})


def test_tracker_forget_client():
    tracker = KnownValuesTracker()
    tracker.record_blind_write(C, frozenset({"a"}))
    tracker.forget_client(C)
    assert tracker.needs(C, "a")


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
        max_size=20,
    )
)
def test_tracker_needs_iff_version_behind(commits):
    """Model check: needs() is true iff the client's held commit position
    differs from the object's latest committed position."""
    tracker = KnownValuesTracker()
    held = None
    latest = -1
    oid = "x"
    tracker.record_blind_write(C, frozenset({oid}))
    held = -1
    for pos, (offset, to_client) in enumerate(commits):
        commit_pos = pos + offset
        tracker.record_commit(
            commit_pos, frozenset({oid}), recipients={C} if to_client else set()
        )
        latest = commit_pos
        if to_client:
            held = commit_pos
    assert tracker.needs(C, oid) == (held != latest)
