"""Unit tests for the First Bound predicate (Equation 1), area culling,
and the Information Bound validator (Algorithm 7)."""

from __future__ import annotations

import pytest

from repro.core.action import Action, ActionId
from repro.core.closure import QueueEntry
from repro.core.culling import moving_effect_affects, projected_position, sphere_affects
from repro.core.first_bound import FirstBoundPredicate
from repro.core.info_bound import InformationBound
from repro.errors import ConfigurationError
from repro.world.geometry import Vec2


class SpatialAction(Action):
    def __init__(self, seq, position, radius=0.0, velocity=None, reads=("x",), writes=("x",), client=0):
        super().__init__(
            ActionId(client, seq),
            reads=frozenset(reads) | frozenset(writes),
            writes=frozenset(writes),
            position=position,
            radius=radius,
            velocity=velocity,
        )

    def compute(self, store):
        return {}


# ---------------------------------------------------------------------------
# FirstBoundPredicate / Equation (1)
# ---------------------------------------------------------------------------
def predicate(**kwargs):
    defaults = dict(max_speed=10.0, rtt_ms=200.0, omega=0.5)
    defaults.update(kwargs)
    return FirstBoundPredicate(**defaults)


def test_derived_quantities():
    p = predicate()
    assert p.horizon_ms == pytest.approx(300.0)
    assert p.push_interval_ms == pytest.approx(100.0)
    # 2 * 10 u/s * 0.3 s = 6 units
    assert p.reach == pytest.approx(6.0)


def test_omega_bounds_validated():
    for omega in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(ConfigurationError):
            predicate(omega=omega)


def test_equation1_inside_and_outside():
    p = predicate()
    action = SpatialAction(0, Vec2(0, 0), radius=4.0)
    # bound = reach(6) + r_C(5) + r_A(4) = 15
    assert p.affects(action, Vec2(15, 0), client_radius=5.0)
    assert not p.affects(action, Vec2(15.1, 0), client_radius=5.0)


def test_missing_positions_are_conservative():
    p = predicate()
    spatial = SpatialAction(0, Vec2(0, 0))
    non_spatial = SpatialAction(1, None)
    assert p.affects(non_spatial, Vec2(1000, 1000), client_radius=0.0)
    assert p.affects(spatial, None, client_radius=0.0)


def test_velocity_culling_uses_projection():
    p = predicate(use_velocity_culling=True)
    # Action at origin moving away from the client at 100 u/s.
    action = SpatialAction(
        0, Vec2(0, 0), radius=50.0, velocity=Vec2(-100.0, 0.0)
    )
    client_pos = Vec2(10.0, 0.0)
    # Plain sphere test would accept (distance 10 <= 6 + 0 + 50).
    plain = predicate()
    assert plain.affects(action, client_pos, client_radius=0.0)
    # With culling: projected position after 0.5s is (-50, 0), distance
    # 60 > reach 6 -> not affecting.
    assert not p.affects(
        action,
        client_pos,
        client_radius=0.0,
        action_time=500.0,
        client_position_time=0.0,
    )


def test_velocity_culling_catches_approaching_effect():
    p = predicate(use_velocity_culling=True)
    action = SpatialAction(0, Vec2(100, 0), velocity=Vec2(-100.0, 0.0))
    # After 1s the effect is at the origin, right on the client.
    assert p.affects(
        action,
        Vec2(0, 0),
        client_radius=0.0,
        action_time=1000.0,
        client_position_time=0.0,
    )


def test_culling_helpers_directly():
    assert projected_position(Vec2(0, 0), Vec2(10, 0), 1000.0, 0.0) == Vec2(10.0, 0.0)
    assert sphere_affects(Vec2(0, 0), 5.0, Vec2(10, 0), reach=4.0, client_radius=1.0)
    assert not sphere_affects(Vec2(0, 0), 5.0, Vec2(11, 0), reach=4.0, client_radius=0.9)
    assert moving_effect_affects(
        Vec2(0, 0), Vec2(10, 0), 1000.0, Vec2(12, 0), 0.0, reach=2.0, client_radius=0.1
    )


# ---------------------------------------------------------------------------
# InformationBound / Algorithm 7
# ---------------------------------------------------------------------------
def make_entries(*specs):
    """specs: (position, reads, writes) tuples, pre-validated=None."""
    entries = []
    for index, (position, reads, writes) in enumerate(specs):
        entries.append(
            QueueEntry(
                index,
                SpatialAction(index, position, reads=reads, writes=writes),
                arrived_at=float(index),
            )
        )
    return entries


def test_threshold_must_be_nonnegative():
    with pytest.raises(ConfigurationError):
        InformationBound(-1.0)


def test_independent_actions_all_admitted():
    bound = InformationBound(10.0)
    entries = make_entries(
        (Vec2(0, 0), ("a",), ("a",)),
        (Vec2(100, 0), ("b",), ("b",)),
    )
    dropped = bound.validate(entries, 0)
    assert dropped == []
    assert all(e.valid for e in entries)
    assert bound.stats.validated == 2
    assert bound.stats.drop_percent == 0.0


def test_nearby_conflict_admitted_far_conflict_dropped():
    bound = InformationBound(threshold=10.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(5, 0), ("x",), ("x",)),   # conflicts at distance 5 <= 10
        (Vec2(50, 0), ("x",), ("x",)),  # conflicts at distance 45/50 > 10
    )
    dropped = bound.validate(entries, 0)
    assert [entries[i].valid for i in range(3)] == [True, True, False]
    assert dropped == [2]
    assert bound.stats.dropped == 1


def test_dropped_entries_break_chains_for_successors():
    # a0 far away; a1 conflicts with a0 and is dropped; a2 conflicts with
    # the same object but a1's drop removed the long link... a0 still
    # matters for a2 directly, so a2 is dropped too unless independent.
    bound = InformationBound(threshold=10.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),   # dropped (far from a0)
        (Vec2(52, 0), ("x",), ("x",)),   # conflicts with a0 (far) but NOT via a1
    )
    bound.validate(entries, 0)
    assert entries[1].valid is False
    # a2 still directly conflicts with a0 at distance 52 -> dropped.
    assert entries[2].valid is False


def test_chain_breaking_saves_downstream_when_local():
    bound = InformationBound(threshold=10.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x", "y"), ("y",)),  # links x-chain to y at 50 -> dropped
        (Vec2(52, 0), ("y",), ("y",)),      # reads y; only writer (a1) was dropped
    )
    bound.validate(entries, 0)
    assert entries[1].valid is False
    assert entries[2].valid is True  # chain was cut by dropping a1


def test_sequential_decisions_within_tick():
    """Dining-philosophers flavour: ring of pairwise conflicts; dropping
    a few grabs partitions the ring into short arcs."""
    bound = InformationBound(threshold=12.0)
    # Philosophers at 10-unit spacing on a line, each sharing a fork
    # with the neighbour (adjacent conflicts only).
    specs = []
    for i in range(8):
        reads = (f"fork{i}", f"fork{i+1}")
        specs.append((Vec2(10.0 * i, 0), reads, reads))
    entries = make_entries(*specs)
    bound.validate(entries, 0)
    # Adjacent conflicts are 10 <= 12 apart; transitive members are 20+
    # away, so every second action gets dropped, cutting the chain.
    verdicts = [e.valid for e in entries]
    assert verdicts[0] is True
    assert False in verdicts  # some drops occurred
    assert verdicts.count(True) >= 4  # but the majority commits


def test_actions_without_position_never_dropped():
    bound = InformationBound(threshold=1.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (None, ("x",), ("x",)),
    )
    bound.validate(entries, 0)
    assert entries[1].valid is True


def test_validate_only_new_suffix():
    bound = InformationBound(threshold=10.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),
    )
    bound.validate(entries, 0)
    more = make_entries((Vec2(0, 0), ("z",), ("z",)))
    entries.append(more[0])
    dropped = bound.validate(entries, 2)
    assert dropped == []
    assert bound.stats.validated == 3


def test_chain_length_stats_recorded():
    bound = InformationBound(threshold=100.0)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(5, 0), ("x",), ("x",)),
        (Vec2(9, 0), ("x",), ("x",)),
    )
    bound.validate(entries, 0)
    assert bound.stats.chain_lengths == [0, 1, 2]


# ---------------------------------------------------------------------------
# InformationBound — delay policy (Section III-E's alternative)
# ---------------------------------------------------------------------------
def test_delay_policy_defers_instead_of_dropping():
    bound = InformationBound(threshold=10.0, policy="delay", max_delay_ticks=2)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),  # chain-breaker
    )
    dropped = bound.validate(entries, 0)
    assert dropped == []
    assert entries[0].valid is True
    assert entries[1].valid is None  # deferred, not dropped
    assert entries[1].deferrals == 1
    assert bound.stats.deferred == 1


def test_delay_policy_drops_after_budget():
    bound = InformationBound(threshold=10.0, policy="delay", max_delay_ticks=2)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),
    )
    bound.validate(entries, 0)
    bound.validate(entries, 1)  # second deferral
    dropped = bound.validate(entries, 1)  # budget exhausted
    assert dropped == [1]
    assert entries[1].valid is False
    assert bound.stats.dropped == 1


def test_delay_policy_rescues_when_conflict_commits():
    bound = InformationBound(threshold=10.0, policy="delay", max_delay_ticks=3)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),
    )
    bound.validate(entries, 0)
    assert entries[1].valid is None
    # The conflicting predecessor commits and leaves the live queue.
    survivor = entries[1]
    dropped = bound.validate([survivor], 0)
    assert dropped == []
    assert survivor.valid is True
    assert bound.stats.rescued == 1


def test_delay_policy_holds_back_later_entries():
    bound = InformationBound(threshold=10.0, policy="delay", max_delay_ticks=2)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),   # deferred
        (Vec2(1, 0), ("z",), ("z",)),    # independent, but behind the hold
    )
    bound.validate(entries, 0)
    assert entries[2].valid is None  # contiguity: not validated yet


def test_delay_policy_validation_resumes_next_round():
    bound = InformationBound(threshold=10.0, policy="delay", max_delay_ticks=1)
    entries = make_entries(
        (Vec2(0, 0), ("x",), ("x",)),
        (Vec2(50, 0), ("x",), ("x",)),
        (Vec2(1, 0), ("z",), ("z",)),
    )
    bound.validate(entries, 0)      # defers entry 1
    dropped = bound.validate(entries, 1)  # budget over: drop 1, admit 2
    assert dropped == [1]
    assert entries[2].valid is True


def test_invalid_policy_rejected():
    import pytest as _pytest

    with _pytest.raises(ConfigurationError):
        InformationBound(1.0, policy="defer-forever")
    with _pytest.raises(ConfigurationError):
        InformationBound(1.0, policy="delay", max_delay_ticks=-1)
