"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "seve" in out
    assert "figure6" in out
    assert "locking" in out


def test_run_command_small(capsys):
    code = main([
        "run", "seve",
        "--clients", "4", "--walls", "100", "--moves", "5",
        "--seed", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "mean response (ms)" in out
    assert "consistency" in out


def test_run_command_skips_consistency(capsys):
    code = main([
        "run", "central",
        "--clients", "3", "--walls", "50", "--moves", "4",
        "--no-consistency-check",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "consistency" not in out


def test_run_rejects_unknown_architecture():
    with pytest.raises(SystemExit):
        main(["run", "quantum"])


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "238 ms" in out


def test_experiment_names_all_wired():
    parser = build_parser()
    for name in EXPERIMENTS:
        args = parser.parse_args(["experiment", name])
        assert args.name == name


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_flags_reach_settings(capsys):
    code = main([
        "run", "incomplete",
        "--clients", "2", "--walls", "0", "--moves", "3",
        "--rtt-ms", "50", "--move-cost-ms", "0.5",
        "--no-consistency-check",
    ])
    out = capsys.readouterr().out
    assert code == 0
    # RTT 50ms reactive: mean response well under the default 238ms RTT.
    mean_line = next(line for line in out.splitlines() if "mean response" in line)
    value = float(mean_line.split()[-1])
    assert value < 100.0
