"""Unit + property tests for the uniform grid spatial index."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.world.geometry import Vec2
from repro.world.spatial import UniformGridIndex


@pytest.fixture
def index() -> UniformGridIndex:
    return UniformGridIndex(cell_size=10.0)


def test_cell_size_must_be_positive():
    with pytest.raises(ConfigurationError):
        UniformGridIndex(0.0)


def test_insert_and_query_point(index):
    index.insert_point("a", Vec2(5, 5))
    assert index.query_radius(Vec2(6, 6), 5.0) == {"a"}
    assert index.query_radius(Vec2(50, 50), 5.0) == set()


def test_point_query_is_exact_filtered(index):
    index.insert_point("a", Vec2(0, 0))
    index.insert_point("b", Vec2(9, 9))  # same cell, farther than radius
    assert index.query_radius(Vec2(0, 0), 3.0) == {"a"}


def test_move_updates_position(index):
    index.insert_point("a", Vec2(5, 5))
    index.move("a", Vec2(95, 95))
    assert index.query_radius(Vec2(5, 5), 8.0) == set()
    assert index.query_radius(Vec2(95, 95), 8.0) == {"a"}
    assert index.position_of("a") == Vec2(95, 95)


def test_move_within_cell_is_tracked(index):
    index.insert_point("a", Vec2(5, 5))
    index.move("a", Vec2(6, 6))
    assert index.position_of("a") == Vec2(6, 6)
    assert index.query_radius(Vec2(6, 6), 1.0) == {"a"}


def test_remove(index):
    index.insert_point("a", Vec2(5, 5))
    index.remove("a")
    assert "a" not in index
    assert index.query_radius(Vec2(5, 5), 10.0) == set()
    index.remove("a")  # idempotent


def test_reinsert_replaces(index):
    index.insert_point("a", Vec2(5, 5))
    index.insert_point("a", Vec2(95, 95))
    assert index.query_radius(Vec2(5, 5), 8.0) == set()
    assert len(index) == 1


def test_box_items_span_cells(index):
    index.insert_box("wall", 0.0, 0.0, 35.0, 5.0)
    assert "wall" in index.query_box(30.0, 0.0, 40.0, 10.0)
    assert "wall" in index.query_radius(Vec2(20, 2), 1.0)
    assert "wall" not in index.query_box(60.0, 60.0, 70.0, 70.0)


def test_box_item_removal_clears_all_cells(index):
    index.insert_box("wall", 0.0, 0.0, 35.0, 5.0)
    index.remove("wall")
    assert index.query_box(0.0, 0.0, 40.0, 10.0) == set()


def test_negative_coordinates_work(index):
    index.insert_point("a", Vec2(-15, -25))
    assert index.query_radius(Vec2(-15, -25), 2.0) == {"a"}


def test_nearest_orders_by_distance(index):
    index.insert_point("far", Vec2(50, 0))
    index.insert_point("near", Vec2(5, 0))
    index.insert_point("mid", Vec2(20, 0))
    assert index.nearest(Vec2(0, 0), 2) == ["near", "mid"]
    assert index.nearest(Vec2(0, 0), 10) == ["near", "mid", "far"]


def test_nearest_empty_and_zero_limit(index):
    assert index.nearest(Vec2(0, 0), 3) == []
    index.insert_point("a", Vec2(1, 1))
    assert index.nearest(Vec2(0, 0), 0) == []


def test_len_and_items(index):
    index.insert_point("a", Vec2(0, 0))
    index.insert_box("w", 0, 0, 5, 5)
    assert len(index) == 2
    assert set(index.items()) == {"a", "w"}


points = st.tuples(
    st.floats(min_value=0, max_value=500, allow_nan=False),
    st.floats(min_value=0, max_value=500, allow_nan=False),
)


@given(
    positions=st.dictionaries(
        st.integers(min_value=0, max_value=50), points, min_size=1, max_size=40
    ),
    center=points,
    radius=st.floats(min_value=0, max_value=300),
)
def test_query_radius_matches_brute_force(positions, center, radius):
    """The index must return a superset-free, exact set for point items."""
    index = UniformGridIndex(cell_size=25.0)
    for item, (x, y) in positions.items():
        index.insert_point(item, Vec2(x, y))
    center_v = Vec2(*center)
    expected = {
        item
        for item, (x, y) in positions.items()
        if Vec2(x, y).distance_to(center_v) <= radius
    }
    assert index.query_radius(center_v, radius) == expected


@given(
    positions=st.dictionaries(
        st.integers(min_value=0, max_value=30), points, min_size=1, max_size=20
    ),
    center=points,
    limit=st.integers(min_value=1, max_value=10),
)
def test_nearest_matches_brute_force(positions, center, limit):
    index = UniformGridIndex(cell_size=25.0)
    for item, (x, y) in positions.items():
        index.insert_point(item, Vec2(x, y))
    center_v = Vec2(*center)
    expected = sorted(
        positions,
        key=lambda item: (Vec2(*positions[item]).distance_to(center_v), item),
    )[:limit]
    assert index.nearest(center_v, limit) == expected
