"""Self-test of the AST determinism linter (docs/static_analysis.md).

Three contracts: (1) every rule in the catalogue fires on its known-bad
corpus snippet — and *only* the expected rule fires, pinning the
false-positive behaviour too; (2) the shipped library is clean, which is
what lets scripts/test.sh fail CI on any new finding; (3) the CLI's
JSON mode, baseline filtering, and exit codes behave as documented.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "lint_corpus"

#: Corpus file -> exact rule histogram the linter must produce.
EXPECTED = {
    "wall_clock.py": {"wall-clock": 4},
    "unseeded_random.py": {"unseeded-random": 2},
    "module_random.py": {"module-random": 3},
    "set_iteration.py": {"set-iteration": 3},
    "id_ordering.py": {"id-ordering": 4},
    "dict_iteration.py": {"dict-iter-serialization": 1},
    "suppressed.py": {},
}


@pytest.mark.parametrize("filename", sorted(EXPECTED))
def test_corpus_snippet_yields_exactly_the_expected_findings(filename):
    findings = lint_paths([CORPUS / filename])
    histogram = Counter(finding.rule for finding in findings)
    assert dict(histogram) == EXPECTED[filename]


def test_corpus_covers_the_whole_rule_catalogue():
    covered = set().union(*(set(rules) for rules in EXPECTED.values()))
    assert covered == set(RULES)


def test_shipped_library_is_clean():
    findings = lint_paths(
        [REPO / "src" / "repro", REPO / "scripts", REPO / "examples"],
        root=REPO,
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_findings_carry_file_line_provenance():
    findings = lint_paths([CORPUS / "wall_clock.py"], root=REPO)
    assert findings, "corpus snippet must produce findings"
    for finding in findings:
        assert finding.path == "tests/lint_corpus/wall_clock.py"
        assert finding.line > 0
        rendered = finding.render()
        assert rendered.startswith(f"{finding.path}:{finding.line}:")
        assert f"[{finding.rule}]" in rendered


def test_suppression_is_per_rule_not_blanket():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time(), sorted([], key=id)  # lint: allow(wall-clock)\n"
    )
    findings = lint_source(source)
    assert [f.rule for f in findings] == ["id-ordering"]


def test_set_typedness_tracks_reassignment():
    # A name loses set-typedness when rebound to a non-set.
    source = (
        "def f(extra):\n"
        "    items = {1, 2} | extra\n"
        "    items = sorted(items)\n"
        "    return [x for x in items]\n"
    )
    assert lint_source(source) == []


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / "lint.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_cli_exit_codes_and_json_document():
    dirty = _run_cli("--check", "determinism", "--json",
                     str(CORPUS / "module_random.py"))
    assert dirty.returncode == 1
    document = json.loads(dirty.stdout)
    assert document["checks"] == ["determinism"]
    assert document["count"] == 3
    assert {f["rule"] for f in document["findings"]} == {"module-random"}

    clean = _run_cli("--check", "determinism", "--json",
                     str(CORPUS / "suppressed.py"))
    assert clean.returncode == 0
    assert json.loads(clean.stdout)["count"] == 0

    missing = _run_cli("--check", "determinism", "no/such/path.py")
    assert missing.returncode == 2


def test_cli_baseline_accepts_and_ratchets(tmp_path):
    baseline = tmp_path / "baseline.json"
    wrote = _run_cli(
        "--check", "determinism", str(CORPUS / "wall_clock.py"),
        "--baseline", str(baseline), "--write-baseline",
    )
    assert wrote.returncode == 0
    # Baselined findings no longer fail the run...
    accepted = _run_cli(
        "--check", "determinism", str(CORPUS / "wall_clock.py"),
        "--baseline", str(baseline),
    )
    assert accepted.returncode == 0
    # ...but a file with fresh findings still does (ratchet, not waiver).
    fresh = _run_cli(
        "--check", "determinism",
        str(CORPUS / "wall_clock.py"), str(CORPUS / "id_ordering.py"),
        "--baseline", str(baseline),
    )
    assert fresh.returncode == 1
