"""Property tests of runs under an *active* fault plan
(docs/fault_model.md):

1. **Replay** — the same (workload seed, fault seed) pair reproduces the
   run exactly, for every architecture.
2. **Convergence** — under loss + retry, every architecture still passes
   its end-of-run consistency check and survivors agree with the
   server's committed state.
3. **Idempotency** — duplicated deliveries never double-apply an action
   (the ActionId / ARQ-sequence dedup layers).
4. **Acceptance** — under 5% loss, 50 ms jitter, and one mid-run crash,
   the four headline architectures complete the workload with no
   survivor divergence (the Section III-C claim, end to end).
"""

from __future__ import annotations

import pytest

from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.net.faults import CrashWindow, FaultPlan

BASE = SimulationSettings(
    num_clients=10,
    num_walls=120,
    moves_per_client=10,
    world_width=250.0,
    world_height=250.0,
    spawn_extent=60.0,
    rtt_ms=150.0,
    move_interval_ms=200.0,
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=21,
)

#: The RING-like baseline is inconsistent *by construction* at small
#: visibility (Section III-B); with visibility covering the whole world
#: it relays everything (≈ Broadcast) and the fault machinery — not the
#: architecture — is what the consistency check exercises.
RING_SETTINGS = BASE.with_(visibility=1_000.0)

LOSSY = FaultPlan(loss_rate=0.05, jitter_ms=30.0, duplicate_rate=0.02, seed=8)

ACCEPTANCE = ["seve", "central", "broadcast", "ring"]


def _settings_for(architecture: str, plan: FaultPlan) -> SimulationSettings:
    base = RING_SETTINGS if architecture == "ring" else BASE
    return base.with_(fault_plan=plan)


def _fingerprint(result):
    summary = result.response
    return (
        result.moves_submitted,
        result.responses_observed,
        (summary.count, summary.mean, summary.p95, summary.maximum),
        result.total_traffic_kb,
        result.virtual_ms,
        result.events,
        result.messages_dropped,
        result.messages_duplicated,
        result.retransmissions,
        result.clients_evicted,
    )


# ---------------------------------------------------------------------------
# 1. Replay: same seeds, same transcript
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("architecture", ACCEPTANCE)
def test_fault_runs_replay_identically(architecture):
    settings = _settings_for(architecture, LOSSY)
    first = run_simulation(architecture, settings)
    second = run_simulation(architecture, settings)
    assert _fingerprint(first) == _fingerprint(second)
    assert first.messages_dropped > 0  # the plan actually fired


@pytest.mark.slow
@pytest.mark.faults
def test_different_fault_seed_changes_the_run():
    a = run_simulation("seve", BASE.with_(fault_plan=LOSSY))
    b = run_simulation(
        "seve", BASE.with_(fault_plan=FaultPlan(
            loss_rate=0.05, jitter_ms=30.0, duplicate_rate=0.02, seed=9
        ))
    )
    assert _fingerprint(a) != _fingerprint(b)


# ---------------------------------------------------------------------------
# 2. Convergence under loss + retry
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("architecture", ACCEPTANCE)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_lossy_run_still_converges(architecture, seed):
    plan = FaultPlan(loss_rate=0.05, jitter_ms=30.0, seed=seed)
    result = run_simulation(architecture, _settings_for(architecture, plan))
    assert result.messages_dropped > 0
    assert result.retransmissions > 0  # ARQ did real work
    assert result.consistency is not None and result.consistency.consistent, (
        result.consistency and result.consistency.violations[:3]
    )
    # Loss never loses *actions*: end-to-end retries + ARQ deliver every
    # submission, so every move gets its stable response.
    assert result.responses_observed == result.moves_submitted


# ---------------------------------------------------------------------------
# 3. Duplicates never double-apply
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("architecture", ACCEPTANCE)
def test_duplicated_deliveries_never_double_apply(architecture):
    plan = FaultPlan(duplicate_rate=0.25, seed=6)
    result = run_simulation(architecture, _settings_for(architecture, plan))
    assert result.messages_duplicated > 0
    assert result.consistency is not None and result.consistency.consistent
    # Each submission is answered exactly once despite the echoes.
    assert result.responses_observed == result.moves_submitted


# ---------------------------------------------------------------------------
# 4. Acceptance: loss + jitter + a mid-run crash
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("architecture", ACCEPTANCE)
def test_degraded_network_with_casualty(architecture):
    """The ISSUE's acceptance scenario: 5% loss, 50 ms jitter, and one
    client dying mid-run.  Everything must complete, the casualty must
    be evicted (Section III-C), and the survivors must not diverge."""
    plan = FaultPlan(
        loss_rate=0.05,
        jitter_ms=50.0,
        seed=12,
        crashes=(CrashWindow(client_id=1, at_ms=700.0),),
    )
    result = run_simulation(architecture, _settings_for(architecture, plan))
    assert result.clients_evicted == 1
    assert result.consistency is not None and result.consistency.consistent, (
        result.consistency and result.consistency.violations[:3]
    )
    # Survivors kept getting answers after the death.
    assert result.responses_observed > 0
    assert result.moves_submitted > 0


@pytest.mark.slow
@pytest.mark.faults
def test_crash_and_reconnect_rejoins_the_run():
    """A client that crashes and later reconnects resumes submitting
    and the run still converges for the survivors."""
    plan = FaultPlan(
        loss_rate=0.02,
        jitter_ms=20.0,
        seed=14,
        crashes=(CrashWindow(client_id=1, at_ms=700.0, reconnect_at_ms=9_000.0),),
    )
    result = run_simulation("seve", BASE.with_(fault_plan=plan))
    assert result.consistency is not None and result.consistency.consistent
    assert result.responses_observed > 0


@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("architecture", ["seve", "incomplete", "seve-hybrid"])
def test_early_reconnect_with_overlapping_crashes(architecture):
    """Regression for three reconnect-boundary bugs, at default scale.

    Clients that reconnect *before* the liveness sweep can evict them
    used to skip the server-side resync, so closures kept subtracting
    entries that were dropped inside the crash window; a push batch
    built during the window and still in flight at reconnect was
    delivered to the revived handler; and a closure chain re-pulling an
    entry older than something already delivered let a client evaluate
    it against future values of its read set.  Each produced survivor
    divergence (conflicting completions or missing objects) under two
    overlapping crash windows with early reconnects."""
    plan = FaultPlan(
        loss_rate=0.05,
        jitter_ms=50.0,
        duplicate_rate=0.02,
        seed=7,
        crashes=(
            CrashWindow(client_id=2, at_ms=900.0, reconnect_at_ms=6_000.0),
            CrashWindow(client_id=5, at_ms=1_500.0, reconnect_at_ms=8_000.0),
        ),
    )
    result = run_simulation(
        architecture, SimulationSettings(num_clients=25, fault_plan=plan)
    )
    assert result.consistency is not None and result.consistency.consistent, (
        result.consistency and result.consistency.violations[:3]
    )
    assert result.responses_observed > 0
