"""The machinery that survives the fault plan: the network's ARQ
transport, crash/reconnect semantics, server-side ActionId idempotency,
heartbeat liveness eviction, and the Section III-C orphan-abort rule.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SeveConfig, SeveEngine
from repro.core.messages import SubmitAction
from repro.errors import NetworkError
from repro.harness.architectures import build_engine
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    LivenessConfig,
    Partition,
    ReliabilityConfig,
)
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.types import SERVER_ID
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


RELIABILITY = ReliabilityConfig(rto_ms=300.0, max_rto_ms=1_200.0)


def make_network(plan=None, *, reliability=RELIABILITY):
    sim = Simulator()
    injector = (
        FaultInjector(plan) if plan is not None and not plan.is_null else None
    )
    net = Network(
        sim, rtt_ms=100.0, bandwidth_bps=None,
        faults=injector, reliability=reliability,
    )
    return sim, net


# ---------------------------------------------------------------------------
# ARQ transport
# ---------------------------------------------------------------------------
def test_arq_recovers_loss_in_order_exactly_once():
    sim, net = make_network(FaultPlan(loss_rate=0.3, seed=2))
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    for n in range(50):
        net.send(0, SERVER_ID, n, 100)
    sim.run()
    assert received == list(range(50))
    assert net.meter.retransmissions > 0
    assert net.meter.messages_dropped > 0


def test_arq_dedups_wire_duplicates():
    sim, net = make_network(FaultPlan(duplicate_rate=0.5, seed=3))
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    for n in range(40):
        net.send(0, SERVER_ID, n, 100)
    sim.run()
    assert received == list(range(40))
    assert net.meter.messages_duplicated > 0


def test_arq_survives_loss_and_jitter_together():
    sim, net = make_network(
        FaultPlan(loss_rate=0.2, jitter_ms=80.0, duplicate_rate=0.1, seed=4)
    )
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    for n in range(60):
        net.send(0, SERVER_ID, n, 100)
    sim.run()
    assert received == list(range(60))


def test_arq_gives_up_and_drains_under_total_blackout():
    """A sender facing a permanently severed destination must abandon
    its packets after max_retries, not retransmit forever (the event
    queue has to empty for the simulation to terminate)."""
    plan = FaultPlan(
        seed=5, partitions=(Partition(0.0, 10_000_000.0),)
    )
    sim, net = make_network(
        plan, reliability=ReliabilityConfig(
            rto_ms=100.0, max_rto_ms=200.0, max_retries=3
        ),
    )
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    for n in range(3):
        net.send(0, SERVER_ID, n, 100)
    sim.run()  # must terminate
    assert received == []
    assert net.meter.messages_abandoned == 3


def test_arq_header_and_ack_bytes_are_metered():
    sim, net = make_network(None)
    net.register(SERVER_ID, lambda src, payload: None)
    net.register(0, lambda src, payload: None)
    net.send(0, SERVER_ID, "x", 100)
    sim.run()
    # Data packet (100 + 8 header) uplink + 8-byte ACK downlink.
    assert net.meter.bytes_sent[0] == 108
    assert net.meter.bytes_sent[SERVER_ID] == 8


def test_unreliable_escape_hatch_skips_arq():
    sim, net = make_network(None)
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    net.send(0, SERVER_ID, "beat", 8, reliable=False)
    sim.run()
    assert received == ["beat"]
    assert net.meter.bytes_sent[0] == 8  # no header, and no ACK came back
    assert net.meter.bytes_sent[SERVER_ID] == 0


# ---------------------------------------------------------------------------
# Crash / reconnect (the Network.detach regression)
# ---------------------------------------------------------------------------
def test_crash_cancels_inflight_deliveries_both_directions():
    """Killing a host with messages in flight both ways must not raise,
    must not hand payloads to a dead handler, and must take back the
    receive-side byte credit."""
    sim, net = make_network(None, reliability=None)
    inbox = []
    net.register(SERVER_ID, lambda src, payload: inbox.append(payload))
    net.register(0, lambda src, payload: inbox.append(payload))
    net.send(0, SERVER_ID, "up", 100)
    net.send(SERVER_ID, 0, "down", 100)
    net.crash(0)  # both messages still on the wire
    sim.run()
    assert inbox == ["up"]  # the uplink message outlives its sender
    assert net.meter.messages_undelivered == 1
    assert net.meter.bytes_received[0] == 0  # credit debited on cancel


def test_reconnect_restores_the_parked_handler():
    sim, net = make_network(None, reliability=None)
    inbox = []
    net.register(SERVER_ID, lambda src, payload: None)
    net.register(0, lambda src, payload: inbox.append(payload))
    net.crash(0)
    net.send(SERVER_ID, 0, "lost", 50)
    sim.run()
    assert inbox == []
    net.reconnect(0)
    net.send(SERVER_ID, 0, "found", 50)
    sim.run()
    assert inbox == ["found"]


def test_reconnect_drops_deliveries_sent_into_the_crash_window():
    """A message sent while the destination was down must NOT reach the
    revived handler, even when the reconnect lands before the scheduled
    arrival: the old incarnation's traffic is dead.  (Regression: a push
    batch built during a crash window — computed against bookkeeping the
    reconnect resync discards — used to slip through and poison the
    rejoiner's replica.)"""
    sim, net = make_network(None, reliability=None)
    inbox = []
    net.register(SERVER_ID, lambda src, payload: None)
    net.register(0, lambda src, payload: inbox.append(payload))
    net.crash(0)
    net.send(SERVER_ID, 0, "stale", 50)  # in flight toward the corpse
    net.reconnect(0)  # revived before the scheduled arrival
    sim.run()
    assert inbox == []
    assert net.meter.messages_undelivered == 1
    net.send(SERVER_ID, 0, "fresh", 50)
    sim.run()
    assert inbox == ["fresh"]


def test_crashed_sender_cannot_send():
    sim, net = make_network(None, reliability=None)
    net.register(SERVER_ID, lambda src, payload: None)
    net.register(0, lambda src, payload: None)
    net.crash(0)
    assert not net.is_registered(0)
    with pytest.raises(NetworkError):
        net.send(0, SERVER_ID, "x", 10)


def test_reconnect_without_crash_rejected():
    sim, net = make_network(None, reliability=None)
    net.register(0, lambda src, payload: None)
    with pytest.raises(NetworkError):
        net.reconnect(0)
    with pytest.raises(NetworkError):
        net.reconnect(7)  # never existed


def test_reliable_sends_to_crashed_host_build_no_channel_state():
    """Reliable traffic towards a crashed destination degrades to raw
    delivery (cancelled on arrival) instead of accumulating an ARQ
    backlog that would retransmit until give-up."""
    sim, net = make_network(None)
    net.register(SERVER_ID, lambda src, payload: None)
    net.register(0, lambda src, payload: None)
    net.crash(0)
    for n in range(10):
        net.send(SERVER_ID, 0, n, 100)
    sim.run()  # must terminate promptly
    assert net.meter.retransmissions == 0
    assert net.meter.messages_undelivered == 10


def test_arq_restarts_fresh_after_reconnect():
    sim, net = make_network(None)
    received = []
    net.register(SERVER_ID, lambda src, payload: received.append(payload))
    net.register(0, lambda src, payload: None)
    net.send(0, SERVER_ID, "before", 100)
    sim.run()
    net.crash(0)
    net.reconnect(0)
    net.send(0, SERVER_ID, "after", 100)
    sim.run()
    assert received == ["before", "after"]


# ---------------------------------------------------------------------------
# Server-side idempotency (ActionId dedup)
# ---------------------------------------------------------------------------
def _tiny_world(n=3, seed=3):
    return ManhattanWorld(
        n,
        ManhattanConfig(width=150.0, height=150.0, num_walls=10,
                        spawn="cluster", spawn_extent=20.0, seed=seed),
    )


def test_basic_server_absorbs_resubmission():
    world = _tiny_world()
    engine = SeveEngine(
        world, 3, SeveConfig(mode="basic", rtt_ms=50.0, tick_ms=20.0)
    )
    client = engine.client(0)
    action = world.plan_move(
        client.optimistic, 0, client.next_action_id(), cost_ms=1.0
    )
    client.submit(action)  # the real submission, via the network
    engine.server._on_message(0, SubmitAction(action))  # a retransmission
    engine.sim.run()
    assert engine.server.stats.duplicate_submissions == 1
    assert engine.server.stats.actions_serialized == 1


def test_incomplete_server_absorbs_resubmission():
    world = _tiny_world()
    engine = SeveEngine(
        world, 3, SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0)
    )
    client = engine.client(0)
    action = world.plan_move(
        client.optimistic, 0, client.next_action_id(), cost_ms=1.0
    )
    client.submit(action)
    engine.server._on_message(0, SubmitAction(action))
    engine.run(until=5_000.0)
    assert engine.server.stats.duplicate_submissions == 1
    assert engine.server.stats.actions_serialized == 1


def test_baseline_server_absorbs_resubmission():
    from repro.harness.config import SimulationSettings

    settings = SimulationSettings(
        num_clients=3, num_walls=10, moves_per_client=0,
        world_width=150.0, world_height=150.0, spawn_extent=20.0, seed=3,
    )
    engine = build_engine("central", settings)
    client = engine.clients[0]
    action = engine.world.plan_move(
        client.store, 0, __import__("repro.core.action", fromlist=["ActionId"]).ActionId(0, 0),
        cost_ms=1.0,
    )
    engine._server_dispatch(0, SubmitAction(action))
    engine._server_dispatch(0, SubmitAction(action))
    engine.sim.run()
    assert engine.duplicate_submissions == 1


# ---------------------------------------------------------------------------
# Liveness eviction (Section III-C)
# ---------------------------------------------------------------------------
LIVENESS = LivenessConfig(
    heartbeat_interval_ms=500.0, timeout_ms=2_000.0
)


def test_silent_client_is_evicted_and_gcd_from_indexes():
    world = _tiny_world()
    engine = SeveEngine(
        world, 3,
        SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0,
                   fault_tolerant=True, liveness=LIVENESS),
    )
    engine.start(stop_at=15_000.0)

    def kill():
        engine.network.crash(0)
        engine.mark_dead(0)

    engine.sim.schedule(1_000.0, kill)
    engine.run(until=10_000.0)
    assert engine.server.stats.clients_evicted == 1
    assert 0 not in engine.server.clients
    assert 0 not in engine.live_client_ids()
    assert set(engine.live_client_ids()) == {1, 2}
    # The spatial interest machinery no longer tracks the corpse.
    assert 0 not in getattr(engine.server, "_last_heard")


def test_chatty_clients_are_not_evicted():
    world = _tiny_world()
    engine = SeveEngine(
        world, 3,
        SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0,
                   liveness=LIVENESS),
    )
    engine.start(stop_at=10_000.0)
    engine.run(until=9_000.0)  # heartbeats flow, nobody dies
    assert engine.server.stats.clients_evicted == 0
    assert set(engine.live_client_ids()) == {0, 1, 2}


def test_reconnected_client_is_reattached():
    world = _tiny_world()
    engine = SeveEngine(
        world, 3,
        SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0,
                   fault_tolerant=True, liveness=LIVENESS),
    )
    engine.start(stop_at=20_000.0)

    def kill():
        engine.network.crash(0)
        engine.mark_dead(0)

    def revive():
        engine.network.reconnect(0)
        engine.mark_alive(0)

    engine.sim.schedule(1_000.0, kill)
    engine.sim.schedule(8_000.0, revive)  # well past the eviction
    engine.run(until=15_000.0)
    assert engine.server.stats.clients_evicted == 1
    assert 0 in engine.server.clients  # re-attached on return
    assert 0 in engine.live_client_ids()


# ---------------------------------------------------------------------------
# Orphan abort: the Section III-C rule
# ---------------------------------------------------------------------------
def test_orphaned_action_aborted_when_all_holders_dead():
    """An uncommitted action whose originator died *before anyone else
    received it* may be treated as never submitted — the exact rule of
    Section III-C — which unsticks the commit frontier."""
    world = ManhattanWorld(
        2,
        ManhattanConfig(width=1000.0, height=1000.0, num_walls=0,
                        spawn="grid", spawn_spacing=800.0, seed=1),
    )
    engine = SeveEngine(
        world, 2,
        SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0,
                   liveness=LIVENESS),
    )
    engine.start(stop_at=20_000.0)
    victim = engine.client(0)
    victim.submit(world.plan_move(
        victim.optimistic, 0, victim.next_action_id(), cost_ms=1.0
    ))

    # Die before the serialized echo returns: the victim never sends its
    # completion, and nobody else ever received the entry.
    def kill():
        engine.network.crash(0)
        engine.mark_dead(0)

    engine.sim.schedule(30.0, kill)
    engine.run(until=15_000.0)
    assert engine.server.stats.clients_evicted == 1
    assert engine.server.stats.orphans_aborted >= 1
    assert engine.server.uncommitted_count == 0


def test_action_with_live_holder_is_never_aborted():
    """The rule's other half: while ANY client that received the action
    survives, aborting would diverge from a replica that may already
    have applied it — so the entry must stay."""
    world = _tiny_world(2)  # clients adjacent: the entry reaches client 1
    engine = SeveEngine(
        world, 2,
        SeveConfig(mode="seve", rtt_ms=50.0, tick_ms=20.0,
                   liveness=LIVENESS),
    )
    engine.start(stop_at=20_000.0)
    victim = engine.client(0)
    victim.submit(world.plan_move(
        victim.optimistic, 0, victim.next_action_id(), cost_ms=1.0
    ))

    # Die only after the push cycle has delivered the entry to client 1.
    def kill():
        engine.network.crash(0)
        engine.mark_dead(0)

    engine.sim.schedule(2_000.0, kill)
    engine.run(until=15_000.0)
    assert engine.server.stats.clients_evicted == 1
    assert engine.server.stats.orphans_aborted == 0
