"""Tests for the hybrid P2P/client-server distribution (§VII future
work): relay grouping, egress savings, latency cost, failure fallback,
and unchanged consistency."""

from __future__ import annotations

import pytest

from repro.core.engine import SeveConfig, SeveEngine
from repro.errors import ConfigurationError
from repro.metrics.consistency import ConsistencyChecker
from repro.types import SERVER_ID
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


def build(mode, num_clients=8, group_size=4, seed=9):
    world = ManhattanWorld(
        num_clients,
        ManhattanConfig(width=200.0, height=200.0, num_walls=30,
                        spawn="cluster", spawn_extent=40.0, seed=seed),
    )
    engine = SeveEngine(
        world, num_clients,
        SeveConfig(mode=mode, rtt_ms=100.0, tick_ms=20.0,
                   hybrid_group_size=group_size),
    )
    engine.start(stop_at=60_000)
    return world, engine


def drive(world, engine, moves=6, interval=200.0):
    for cid in engine.clients:
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": moves}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            ))

        engine.sim.call_every(interval, submit, start_delay=4.0 + cid,
                              stop_at=interval * (moves + 2))
    engine.run(until=interval * (moves + 2))
    engine.run_to_quiescence()


def test_group_size_validated():
    from repro.core.hybrid import HybridRelayServer

    world, engine = build("hybrid")
    with pytest.raises(ConfigurationError):
        build("hybrid", group_size=0)


def test_relay_head_assignment():
    world, engine = build("hybrid", num_clients=8, group_size=4)
    server = engine.server
    # Groups are spatial, so membership is data-driven; the invariants:
    # every client belongs to exactly one group of <= 4 mutually
    # consistent members, the first member heads it, and heads have no
    # relay head of their own.
    seen = set()
    for cid in range(8):
        group = server.group_of(cid)
        assert cid in group
        assert 1 <= len(group) <= 4
        head = group[0]
        if cid == head:
            assert server.relay_head_for(cid) is None
        else:
            assert server.relay_head_for(cid) == head
        seen.add(tuple(group))
    assert server.relay_head_for(99) is None
    # Groups partition the population.
    assert sum(len(g) for g in seen) == 8


def test_hybrid_confirms_everything_and_stays_consistent():
    world, engine = build("hybrid")
    drive(world, engine)
    for client in engine.clients.values():
        assert client.stats.confirmed + client.stats.aborted == 6
    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.stable for cid, c in engine.clients.items()}
    )
    assert report.consistent, report.violations[:3]
    assert engine.server.hybrid_stats.bundles_sent > 0


def test_hybrid_reduces_server_egress():
    world_p, plain = build("seve", seed=9)
    drive(world_p, plain)
    world_h, hybrid = build("hybrid", seed=9)
    drive(world_h, hybrid)
    plain_egress = plain.network.meter.bytes_sent[SERVER_ID]
    hybrid_egress = hybrid.network.meter.bytes_sent[SERVER_ID]
    assert hybrid_egress < plain_egress
    # Totals are comparable: the bytes moved to peer links, not away.
    assert hybrid.network.meter.total_bytes > hybrid_egress


def test_hybrid_latency_cost_is_ordered():
    """The egress saving is paid in latency: heads wait for the larger
    bundle to serialize; members additionally pay the peer hop (one-way
    latency plus the head's uplink serialization)."""
    world_p, plain = build("seve", seed=9)
    drive(world_p, plain)
    world_h, hybrid = build("hybrid", seed=9)
    drive(world_h, hybrid)
    plain_mean = plain.response_times.summary().mean
    heads = {hybrid.server.group_of(cid)[0] for cid in hybrid.clients}
    head_mean = min(
        hybrid.response_times.client_summary(cid).mean for cid in heads
    )
    member_mean = max(
        hybrid.response_times.client_summary(cid).mean
        for cid in hybrid.clients
        if cid not in heads
    )
    assert plain_mean < head_mean < member_mean
    # The slowest member's surcharge over the fastest head covers at
    # least the one-way peer-hop latency (50ms at RTT 100).
    assert member_mean - head_mean >= 40.0


def test_dead_head_falls_back_to_direct():
    world, engine = build("hybrid", num_clients=4, group_size=4)
    # Kill the head before anyone acts.
    engine.network.unregister(0)
    engine.server.detach_client(0)
    client = engine.client(1)
    client.submit(world.plan_move(
        client.optimistic, 1, client.next_action_id(), cost_ms=1.0
    ))
    engine.run(until=2_000)
    engine.run_to_quiescence()
    # With the head gone, member 1 is served directly and still confirms.
    assert client.stats.confirmed == 1
    assert engine.server.relay_head_for(1) is None  # 1 is the new head
