"""Unit tests for the ``repro.obs`` observability layer.

Covers the metrics registry (fixed-bucket histogram semantics, type and
boundary errors), the trace recorder (span nesting, Chrome
``trace_event`` export round-trip, JSONL), and the :class:`Observer`
facade's seam hooks (docs/observability.md).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    LATENCY_BUCKETS_MS,
    PHASES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observer,
    PhaseProfile,
    TraceRecorder,
    load_chrome,
)

# ----------------------------------------------------------------------
# Histogram bucketing
# ----------------------------------------------------------------------


class TestHistogram:
    def test_boundary_samples_fall_in_their_bucket(self):
        # Bucket i holds bounds[i-1] < x <= bounds[i]: a sample exactly
        # on a boundary belongs to that boundary's bucket.
        h = Histogram("x", (10.0, 100.0))
        h.record(10.0)
        h.record(100.0)
        assert h.counts == [1, 1, 0]

    def test_overflow_bucket_catches_samples_past_last_bound(self):
        h = Histogram("x", (1.0,))
        h.record_many([0.5, 1.0, 1.0001, 1e9])
        assert h.counts == [2, 2]
        assert h.count == 4

    def test_min_max_mean_tracking(self):
        h = Histogram("x", (10.0,))
        h.record_many([2.0, 4.0, 6.0])
        assert (h._min, h._max) == (2.0, 6.0)
        assert h.mean == 4.0
        d = h.to_dict()
        assert (d["min"], d["max"], d["sum"]) == (2.0, 6.0, 12.0)

    def test_empty_histogram_exports_none_min_max_and_nan_stats(self):
        h = Histogram("x", (1.0,))
        d = h.to_dict()
        assert d["min"] is None and d["max"] is None
        assert math.isnan(h.mean)
        assert math.isnan(h.quantile(0.5))

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram("x", (10.0, 100.0))
        h.record_many([1.0] * 9 + [50.0])
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.95) == 100.0

    def test_quantile_overflow_bucket_reports_observed_max(self):
        h = Histogram("x", (10.0,))
        h.record_many([5.0, 123.0, 456.0])
        assert h.quantile(1.0) == 456.0

    def test_quantile_out_of_range_raises(self):
        h = Histogram("x", (1.0,))
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("x", ())

    @pytest.mark.parametrize("bounds", [(2.0, 1.0), (1.0, 1.0)])
    def test_unsorted_or_duplicate_bounds_rejected(self, bounds):
        with pytest.raises(ObservabilityError):
            Histogram("x", bounds)

    def test_default_latency_buckets_are_strictly_ascending(self):
        assert list(LATENCY_BUCKETS_MS) == sorted(set(LATENCY_BUCKETS_MS))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError):
            Counter("x").inc(-1)

    def test_gauge_is_last_write_wins(self):
        g = Gauge("x")
        g.set(1.0)
        g.set(7)
        assert g.value == 7.0

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError):
            registry.gauge("a")
        with pytest.raises(ObservabilityError):
            registry.histogram("a")

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h", bounds=(1.0, 3.0))
        # Identical bounds re-register fine.
        assert registry.histogram("h", bounds=(1.0, 2.0)).bounds == (1.0, 2.0)

    def test_write_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(10.0,)).record(4.0)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text()) == registry.to_dict()

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert registry.get("missing") is None


# ----------------------------------------------------------------------
# Trace recorder
# ----------------------------------------------------------------------


class TestTraceRecorder:
    def test_spans_nest_per_track(self):
        trace = TraceRecorder()
        trace.begin("outer", 0.0, track="server")
        trace.begin("unrelated", 0.0, track="host-1")
        trace.begin("inner", 1.0, track="server")
        trace.end(2.0, track="server")   # closes inner
        trace.end(3.0, track="server")   # closes outer
        trace.end(4.0, track="host-1")
        names = [e["name"] for e in trace.events if e["ph"] == "E"]
        assert names == ["inner", "outer", "unrelated"]
        assert trace.open_spans() == 0

    def test_end_without_open_span_raises(self):
        trace = TraceRecorder()
        with pytest.raises(ObservabilityError):
            trace.end(1.0, track="server")

    def test_negative_duration_raises(self):
        with pytest.raises(ObservabilityError):
            TraceRecorder().complete("x", 10.0, -1.0)

    def test_chrome_export_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.begin("cycle", 100.0, track="server", args={"batches": 2})
        trace.end(105.5, track="server")
        trace.complete("host.service", 200.25, 7.5, track="host-3")
        trace.instant("retry", 250.0, track="host-3", args={"attempt": 1})
        path = tmp_path / "run.trace.json"
        trace.write_chrome(path)
        assert load_chrome(path) == trace.events

    def test_chrome_export_units_and_metadata(self, tmp_path):
        trace = TraceRecorder()
        trace.complete("work", 3.0, 1.5, track="server")
        payload = trace.to_chrome()
        meta, span = payload["traceEvents"]
        assert meta["ph"] == "M" and meta["args"] == {"name": "server"}
        assert span["ts"] == 3_000.0 and span["dur"] == 1_500.0  # ms -> µs
        assert payload["displayTimeUnit"] == "ms"

    def test_jsonl_export_one_event_per_line(self, tmp_path):
        trace = TraceRecorder()
        trace.instant("a", 1.0)
        trace.instant("b", 2.0)
        path = tmp_path / "run.trace.jsonl"
        trace.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


# ----------------------------------------------------------------------
# Observer facade
# ----------------------------------------------------------------------


class TestObserver:
    def test_wall_returns_zero_without_profile(self):
        assert Observer().wall() == 0.0
        assert Observer(profile=True).wall() > 0.0

    def test_trace_and_profile_optional(self):
        bare = Observer()
        assert bare.trace is None and bare.profile is None
        full = Observer(trace=True, profile=True)
        assert full.trace is not None and full.profile is not None

    def test_seam_hooks_update_metrics_profile_and_trace(self):
        obs = Observer(trace=True, profile=True)
        obs.on_dispatch(wall_s=0.001)
        obs.on_host_service(3, start_ms=10.0, cost_ms=7.44, queue_delay_ms=2.0)
        obs.on_link_transmit(0, -1, size_bytes=120, queue_delay_ms=0.0)
        obs.on_arq_retransmit(0, -1, now_ms=50.0, seq=4)
        obs.on_arq_abandoned(0, -1, now_ms=60.0)
        obs.on_push_scan(100.0, wall_s=0.0, candidates=5)
        obs.on_push_closure(sim_cost_ms=0.04, wall_s=0.0)
        obs.on_push_build(100.0, sim_cost_ms=0.2, batches=2, entries=6, wall_s=0.0)
        obs.on_validate(110.0, sim_cost_ms=0.1, entries=3, dropped=1, wall_s=0.0)
        obs.on_server_relay(120.0, recipients=8)
        obs.on_hybrid_bundle(130.0, members=3, deduplicated=2)
        obs.on_client_apply(2, now_ms=140.0, cost_ms=7.44)
        obs.on_client_retry(2, now_ms=150.0, attempt=1)

        counters = {
            name
            for name in obs.metrics.names()
            if obs.metrics.get(name).to_dict()["type"] == "counter"
        }
        assert {
            "sim.dispatched", "host.items", "net.messages", "net.bytes",
            "net.arq.retransmits", "net.arq.abandoned", "server.push.scans",
            "server.closures", "server.push_cycles", "server.push.entries",
            "server.validations", "server.actions_dropped", "server.relays",
            "server.hybrid.bundles", "server.hybrid.deduplicated",
            "client.applies", "client.retries",
        } <= counters
        # Every phase the hooks recorded is a canonical PHASES name.
        assert set(obs.profile.phases) <= set(PHASES)
        assert obs.profile.as_dict()["host.service"]["sim_ms"] == 7.44
        assert len(obs.trace) > 0 and obs.trace.open_spans() == 0

    def test_record_run_summary_folds_in_headline_metrics(self):
        obs = Observer()
        obs.record_run_summary(
            response_samples=[238.0, 250.0], virtual_ms=5_000.0, events=42
        )
        assert obs.metrics.histogram("response_ms").count == 2
        assert obs.metrics.gauge("run.virtual_ms").value == 5_000.0
        assert obs.metrics.gauge("run.events").value == 42.0


class TestPhaseProfile:
    def test_record_aggregates_per_phase(self):
        profile = PhaseProfile()
        profile.record("server.validate", sim_ms=1.0, wall_ms=0.5)
        profile.record("server.validate", sim_ms=2.0, wall_ms=0.5, n=3)
        assert profile.as_dict() == {
            "server.validate": {"count": 4, "sim_ms": 3.0, "wall_ms": 1.0}
        }

    def test_as_dict_is_phase_sorted(self):
        profile = PhaseProfile()
        profile.record("z")
        profile.record("a")
        assert list(profile.as_dict()) == ["a", "z"]
