"""Integration tests for the SEVE engine facade across its four modes."""

from __future__ import annotations

import pytest

from repro.core.engine import MODES, SeveConfig, SeveEngine
from repro.errors import ConfigurationError
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


def build_engine(mode, num_clients=4, **config_kwargs):
    world = ManhattanWorld(
        num_clients,
        ManhattanConfig(
            width=200.0, height=200.0, num_walls=20, spawn="cluster",
            spawn_extent=40.0, seed=5,
        ),
    )
    config = SeveConfig(mode=mode, rtt_ms=100.0, tick_ms=20.0, **config_kwargs)
    return world, SeveEngine(world, num_clients, config)


def drive(world, engine, moves=5, interval=120.0):
    engine.start(stop_at=20_000)
    for cid in engine.clients:
        counter = {"left": moves}

        def submit(cid=cid, counter=counter):
            if counter["left"] <= 0:
                return
            counter["left"] -= 1
            client = engine.client(cid)
            action = world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            )
            client.submit(action)

        engine.sim.call_every(
            interval, submit, start_delay=5.0 + cid, stop_at=interval * (moves + 2)
        )
    engine.run(until=interval * (moves + 2))
    engine.run_to_quiescence()


def test_invalid_mode_rejected():
    with pytest.raises(ConfigurationError):
        SeveConfig(mode="nonsense")


@pytest.mark.parametrize("mode", MODES)
def test_every_mode_confirms_all_actions(mode):
    world, engine = build_engine(mode)
    drive(world, engine)
    for client in engine.clients.values():
        total = client.stats.confirmed + client.stats.aborted
        assert total == client.stats.submitted == 5
    assert engine.response_times.summary().count + engine.total_dropped == 20


@pytest.mark.parametrize("mode", MODES)
def test_every_mode_reaches_quiescence_consistently(mode):
    world, engine = build_engine(mode)
    drive(world, engine)
    if mode == "basic":
        # Full replication: all stable replicas identical.
        replicas = [client.stable for client in engine.clients.values()]
        reference = replicas[0]
        for replica in replicas[1:]:
            assert reference.diff(replica) == {}
    else:
        # Partial replicas: every held value must be a committed version.
        from repro.metrics.consistency import ConsistencyChecker

        checker = ConsistencyChecker(engine.state)
        report = checker.check_all(
            {cid: c.stable for cid, c in engine.clients.items()}
        )
        assert report.consistent, report.violations[:3]


def test_first_bound_response_bound_holds():
    """The Section III-D claim: stable response within (1+omega) RTT,
    plus a tick of validation alignment and evaluation costs."""
    world, engine = build_engine("seve", num_clients=3, omega=0.5)
    drive(world, engine, moves=8)
    summary = engine.response_times.summary()
    assert summary.count > 0
    bound = (1 + engine.config.omega) * engine.config.rtt_ms
    # The paper's bound assumes constant-time evaluation; allow one
    # validation tick of alignment plus the actual CPU costs on top.
    slack = engine.config.tick_ms + 60.0
    assert summary.maximum <= bound + slack


def test_incomplete_mode_is_reactive_one_rtt():
    world, engine = build_engine("incomplete", num_clients=2)
    drive(world, engine, moves=4)
    summary = engine.response_times.summary()
    # One round trip (100ms) plus evaluation costs; no push alignment.
    assert summary.mean < 150.0


def test_basic_mode_everyone_evaluates_everything():
    world, engine = build_engine("basic", num_clients=4)
    drive(world, engine, moves=5)
    for client in engine.clients.values():
        # 5 own + 15 remote actions evaluated stably.
        assert client.stats.stable_evaluations == 20


def test_seve_clients_evaluate_less_than_basic():
    world_b, basic = build_engine("basic", num_clients=6)
    drive(world_b, basic, moves=5)
    world_s, seve = build_engine("seve", num_clients=6)
    drive(world_s, seve, moves=5)
    basic_evals = sum(c.stats.stable_evaluations for c in basic.clients.values())
    seve_evals = sum(c.stats.stable_evaluations for c in seve.clients.values())
    assert seve_evals <= basic_evals


def test_drop_accounting_matches_server():
    world, engine = build_engine("seve", num_clients=4, threshold=0.5)
    drive(world, engine, moves=6)
    server_drops = engine.server.stats.actions_dropped
    assert engine.total_dropped == server_drops
    if server_drops:
        assert engine.drop_percent > 0


def test_planning_store_is_optimistic_replica():
    world, engine = build_engine("seve", num_clients=2)
    assert engine.planning_store(0) is engine.client(0).optimistic


def test_fault_tolerant_mode_commits_despite_originator_failure():
    world, engine = build_engine("seve", num_clients=3, fault_tolerant=True)
    engine.start(stop_at=20_000)
    client = engine.client(0)
    action = world.plan_move(
        client.optimistic, 0, client.next_action_id(), cost_ms=1.0
    )
    client.submit(action)
    # Another client acts too so there is cross-traffic.
    other = engine.client(1)
    other_action = world.plan_move(
        other.optimistic, 1, other.next_action_id(), cost_ms=1.0
    )
    other.submit(other_action)
    # Kill the originator right after its submission leaves.
    engine.sim.schedule(30.0, lambda: engine.network.unregister(0))
    engine.run(until=5_000)
    # The action still commits: some surviving client evaluated it and
    # reported the completion (client 1 is within range in this world).
    assert engine.server.stats.actions_committed >= 1


def test_negative_client_count_rejected():
    world = ManhattanWorld(1, ManhattanConfig(num_walls=0))
    with pytest.raises(ConfigurationError):
        SeveEngine(world, -1)
