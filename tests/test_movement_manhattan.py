"""Unit tests for MoveAction and the Manhattan People world."""

from __future__ import annotations

import math

import pytest

from repro.core.action import ActionId
from repro.errors import ConfigurationError
from repro.state.store import ObjectStore
from repro.world.avatar import avatar_id, avatar_object, avatar_position
from repro.world.geometry import Vec2
from repro.world.manhattan import ManhattanConfig, ManhattanWorld
from repro.world.movement import COLLISION_DISTANCE, MoveAction
from repro.world.walls import Wall, WallField


def open_field(width=100.0, height=100.0, walls=()):
    return WallField(walls, width=width, height=height)


def store_with_avatars(*specs):
    """specs: (index, position, heading) tuples."""
    return ObjectStore(
        avatar_object(i, p, heading=h, speed=10.0) for i, p, h in specs
    )


def move(avatar_index, walls, neighbors=frozenset(), duration=1.0, seq=0):
    return MoveAction(
        ActionId(avatar_index, seq),
        avatar_id(avatar_index),
        neighbors=frozenset(neighbors),
        walls=walls,
        duration_s=duration,
        effect_range=10.0,
        position=Vec2(0, 0),
        cost_ms=1.0,
    )


# ---------------------------------------------------------------------------
# MoveAction
# ---------------------------------------------------------------------------
def test_clear_path_advances():
    store = store_with_avatars((0, Vec2(50, 50), 0.0))
    action = move(0, open_field())
    result = action.apply(store)
    me = store.get("avatar:0")
    assert avatar_position(me) == Vec2(60.0, 50.0)  # 10 u/s for 1 s
    assert me["bumps"] == 0
    assert result.written_ids() == frozenset({"avatar:0"})


def test_wall_blocks_and_turns_90():
    wall = Wall(0, Vec2(55, 40), Vec2(55, 60))
    store = store_with_avatars((0, Vec2(50, 50), 0.0))
    action = move(0, open_field(walls=[wall]))
    action.apply(store)
    me = store.get("avatar:0")
    assert avatar_position(me) == Vec2(50, 50)  # stays put
    assert me["bumps"] == 1
    assert abs(float(me["heading"])) == pytest.approx(math.pi / 2)


def test_border_bounce():
    store = store_with_avatars((0, Vec2(95, 50), 0.0))
    action = move(0, open_field())
    action.apply(store)
    me = store.get("avatar:0")
    assert me["bumps"] == 1
    assert avatar_position(me) == Vec2(95, 50)


def test_avatar_collision_uses_declared_neighbors_only():
    blocker_pos = Vec2(60, 50)
    store = store_with_avatars((0, Vec2(50, 50), 0.0), (1, blocker_pos, 0.0))
    # Without declaring avatar:1, the move passes straight through it.
    free = move(0, open_field())
    free.apply(store.snapshot())
    # Declaring it makes the collision visible.
    blocked = move(0, open_field(), neighbors={avatar_id(1)}, seq=1)
    result_store = store.snapshot()
    blocked.apply(result_store)
    me = result_store.get("avatar:0")
    assert me["bumps"] == 1
    assert blocked.reads == frozenset({avatar_id(0), avatar_id(1)})


def test_dead_neighbors_do_not_collide():
    store = store_with_avatars((0, Vec2(50, 50), 0.0), (1, Vec2(60, 50), 0.0))
    store.get(avatar_id(1))["alive"] = False
    action = move(0, open_field(), neighbors={avatar_id(1)})
    action.apply(store)
    assert store.get(avatar_id(0))["bumps"] == 0


def test_collision_distance_boundary():
    target = Vec2(60, 50)
    near = Vec2(60 + COLLISION_DISTANCE - 0.1, 50)
    store = store_with_avatars((0, Vec2(50, 50), 0.0), (1, near, 0.0))
    action = move(0, open_field(), neighbors={avatar_id(1)})
    action.apply(store)
    assert store.get(avatar_id(0))["bumps"] == 1


def test_determinism_across_replicas():
    wall = Wall(0, Vec2(55, 40), Vec2(55, 60))
    field = open_field(walls=[wall])
    a = store_with_avatars((0, Vec2(50, 50), 0.0))
    b = a.snapshot()
    action = move(0, field)
    assert action.apply(a) == action.apply(b)
    assert a.get("avatar:0") == b.get("avatar:0")


def test_bounce_direction_varies_with_action_id():
    wall = Wall(0, Vec2(55, 40), Vec2(55, 60))
    field = open_field(walls=[wall])
    headings = set()
    for seq in range(8):
        store = store_with_avatars((0, Vec2(50, 50), 0.0))
        move(0, field, seq=seq).apply(store)
        headings.add(round(float(store.get("avatar:0")["heading"]), 6))
    assert len(headings) == 2  # both +90 and -90 occur across ids


def test_dead_mover_aborts():
    store = store_with_avatars((0, Vec2(50, 50), 0.0))
    store.get("avatar:0")["alive"] = False
    result = move(0, open_field()).apply(store)
    assert result.aborted


# ---------------------------------------------------------------------------
# ManhattanWorld
# ---------------------------------------------------------------------------
def test_world_initial_objects_and_avatars():
    world = ManhattanWorld(5, ManhattanConfig(num_walls=10, seed=2))
    objects = list(world.initial_objects())
    assert len(objects) == 5
    assert {obj.oid for obj in objects} == {avatar_id(i) for i in range(5)}
    for obj in objects:
        assert world.walls.inside(avatar_position(obj))


def test_world_avatar_of_bounds():
    world = ManhattanWorld(3, ManhattanConfig(num_walls=0))
    assert world.avatar_of(2) == "avatar:2"
    assert world.avatar_of(3) is None
    assert world.avatar_of(-2) is None


def test_world_is_deterministic_per_seed():
    a = ManhattanWorld(6, ManhattanConfig(num_walls=30, seed=9))
    b = ManhattanWorld(6, ManhattanConfig(num_walls=30, seed=9))
    assert list(a.initial_objects()) == list(b.initial_objects())


def test_grid_spawn_spacing():
    world = ManhattanWorld(
        4, ManhattanConfig(num_walls=0, spawn="grid", spawn_spacing=4.0)
    )
    positions = [avatar_position(o) for o in world.initial_objects()]
    assert positions[0].distance_to(positions[1]) == pytest.approx(4.0)


def test_uniform_spawn_covers_world():
    world = ManhattanWorld(
        50, ManhattanConfig(num_walls=0, spawn="uniform", seed=1)
    )
    positions = [avatar_position(o) for o in world.initial_objects()]
    xs = [p.x for p in positions]
    assert max(xs) - min(xs) > world.config.width * 0.5


def test_unknown_spawn_mode_rejected():
    with pytest.raises(ConfigurationError):
        ManhattanConfig(spawn="everywhere")


def test_plan_move_declares_neighbors_within_effect_range():
    config = ManhattanConfig(num_walls=0, effect_range=10.0)
    world = ManhattanWorld(3, config)
    store = store_with_avatars(
        (0, Vec2(100, 100), 0.0),
        (1, Vec2(105, 100), 0.0),  # within range
        (2, Vec2(150, 100), 0.0),  # outside
    )
    action = world.plan_move(store, 0, ActionId(0, 0), cost_ms=2.0)
    assert action.reads == frozenset({avatar_id(0), avatar_id(1)})
    assert action.writes == frozenset({avatar_id(0)})
    assert action.cost_ms == 2.0
    assert action.velocity is not None


def test_client_radius_is_visibility():
    world = ManhattanWorld(
        2, ManhattanConfig(num_walls=0, visibility=30.0, effect_range=10.0)
    )
    assert world.client_radius(0) == 30.0


def test_visible_avatar_count():
    config = ManhattanConfig(num_walls=0, visibility=20.0)
    world = ManhattanWorld(3, config)
    store = store_with_avatars(
        (0, Vec2(100, 100), 0.0),
        (1, Vec2(110, 100), 0.0),
        (2, Vec2(170, 100), 0.0),
    )
    assert world.visible_avatar_count(store, 0) == 1
    store.discard(avatar_id(0))
    assert world.visible_avatar_count(store, 0) == 0


def test_visible_wall_count_scales_with_walls():
    few = ManhattanWorld(1, ManhattanConfig(num_walls=50, seed=4))
    many = ManhattanWorld(1, ManhattanConfig(num_walls=2000, seed=4))
    center = Vec2(500, 500)
    assert many.visible_wall_count(center) > few.visible_wall_count(center)
