"""Round-trip and error-path tests for the binary message codec.

The codec backs the parallel backend's cross-partition transport (every
cross-shard message in a partitioned run is encoded and decoded through
it), so the contract here is strict: decode(encode(m)) == m for every
protocol message type, and malformed frames fail loudly instead of
yielding garbage.
"""

from __future__ import annotations

import pytest

from repro.core.action import ActionId, ActionResult, BlindWrite
from repro.core.messages import (
    PROTOCOL_MESSAGES,
    AbortNotice,
    ActionBatch,
    ClientHello,
    CommitNotice,
    Completion,
    CodecError,
    DrainDone,
    GroupBundle,
    HandoffPrepare,
    HandoffReady,
    HandoffTransfer,
    HandoffWelcome,
    Heartbeat,
    LeaseGrant,
    LeaseHeartbeat,
    LeaseRequest,
    LeaseVote,
    LoadReport,
    MessageCodec,
    OrderedAction,
    PartitionCommit,
    PartitionUpdate,
    PeerForward,
    RegionSync,
    RelayedAction,
    ShardHello,
    SpanAbort,
    SpanForward,
    SpanResult,
    SpanSplice,
    StateUpdate,
    SubmitAction,
    wire_size,
)
from repro.net.network import _Ack, _Packet
from repro.world.geometry import Vec2
from repro.world.movement import MoveAction
from repro.world.walls import Wall, WallField

WALLS = WallField(
    (Wall(0, Vec2(55, 40), Vec2(55, 60)),), width=100.0, height=100.0
)


def codec() -> MessageCodec:
    return MessageCodec(walls=WALLS)


def snap(obj):
    """A structural fingerprint usable for round-trip comparison.

    MoveAction (and friends) deliberately use identity equality, so
    decoded copies can never compare ``==`` to the originals; instead we
    compare recursively by type + fields.  The wall field is collapsed
    to a marker: it never crosses the wire and decode rebinds the
    decoder's own copy.
    """
    if isinstance(obj, WallField):
        return "<walls>"
    if isinstance(obj, (bool, int, float, str, bytes, type(None))):
        return obj
    if isinstance(obj, (list, tuple)):
        return (type(obj).__name__, tuple(snap(x) for x in obj))
    if isinstance(obj, (set, frozenset)):
        return frozenset(snap(x) for x in obj)
    if isinstance(obj, dict):
        return tuple(sorted((k, snap(v)) for k, v in obj.items()))
    fields = {}
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if hasattr(obj, name):
                fields[name] = getattr(obj, name)
    fields.update(getattr(obj, "__dict__", {}))
    return (
        type(obj).__name__,
        tuple(sorted((k, snap(v)) for k, v in fields.items())),
    )


def move_action(seq: int = 0) -> MoveAction:
    return MoveAction(
        ActionId(3, seq),
        "avatar:3",
        neighbors=frozenset({"avatar:1", "avatar:2"}),
        walls=WALLS,
        duration_s=0.3,
        effect_range=10.0,
        position=Vec2(12.5, 40.25),
        velocity=Vec2(1.0, -2.0),
        cost_ms=7.44,
    )


def blind_write(seq: int = 9) -> BlindWrite:
    return BlindWrite(
        ActionId(-1, seq),
        {"avatar:5": {"x": 1.5, "label": "spawn", "alive": True, "n": None}},
        origin=ActionId(5, 0),
    )


RESULT = ActionResult.of({"avatar:3": {"x": 60.0, "y": 50.0, "bumps": 1}})

#: One representative instance per protocol message type (plus the
#: net-layer ARQ frames that ride through worker bundles).
MESSAGES = [
    SubmitAction(move_action()),
    SubmitAction(blind_write()),
    OrderedAction(7, move_action(1)),
    ActionBatch(
        (OrderedAction(-1, blind_write()), OrderedAction(4, move_action(2))),
        last_installed=3,
    ),
    Completion(4, ActionId(3, 2), RESULT, reporter=3),
    Completion(5, ActionId(3, 3), ActionResult.of({}, aborted=True)),
    AbortNotice(ActionId(2, 11)),
    StateUpdate(RESULT.written, cause=ActionId(3, 2), submitted_at=125.5),
    StateUpdate((), cause=None),
    Heartbeat(sender=6),
    RelayedAction(move_action(3), submitted_at=300.0),
    PeerForward(9, ActionBatch((OrderedAction(1, move_action(4)),))),
    GroupBundle(
        shared=(OrderedAction(2, move_action(5)),),
        members=((1, (0,)), (2, (0, OrderedAction(-1, blind_write(1))))),
        last_installed=2,
    ),
    SpanForward(0, (0, 1), move_action(6)),
    SpanSplice(12, 1, (0, 1), move_action(7)),
    SpanResult(12, ActionId(3, 7), RESULT),
    SpanAbort(13, ActionId(3, 8)),
    HandoffPrepare(2),
    HandoffReady(4),
    HandoffTransfer(
        4, 41.5, interests=frozenset({"avatar:1", "zone:a"}),
        resolved=(ActionId(4, 0), ActionId(4, 1)),
    ),
    HandoffTransfer(4, 41.5, interests=None),
    HandoffWelcome(1, resolved=(ActionId(4, 2),)),
    CommitNotice(0, ActionId(3, 0)),
    CommitNotice(2**60, ActionId(-1, 2**31)),
    LoadReport(shard=0, round=0, cpu_ms=0.0, serialized=0, clients=0),
    LoadReport(
        shard=3, round=2**40, cpu_ms=1.0e9 + 0.5, serialized=-1, clients=64
    ),
    PartitionUpdate(version=1, boundaries=()),
    PartitionUpdate(version=2**62, boundaries=(0.0, 300.25, 1200.0)),
    DrainDone(shard=1, version=4),
    PartitionCommit(version=0),
    RegionSync(version=3, lo=0.0, hi=600.0, entries=()),
    RegionSync(
        version=4,
        lo=-1.5,
        hi=1.0e12,
        entries=(
            ("avatar:1", -1, 0, (("x", 1.5), ("alive", True), ("n", None))),
            ("avatar:2", 2**48, 1, (("label", "spawn"),)),
        ),
    ),
    LeaseHeartbeat(term=0, holder=-1),
    LeaseRequest(term=1, candidate=2),
    LeaseVote(term=1, voter=0, max_gsn=-1),
    LeaseGrant(term=2**31, holder=1, gsn_floor=0),
    ShardHello(shard=2),
    ClientHello(client_id=5, radius=20.0, interests=frozenset({"avatar:5"})),
    ClientHello(client_id=3, radius=0.0, interests=None),
    _Packet(3, 1, SubmitAction(move_action(8))),
    _Packet(0, 0, None),
    _Ack(17),
]


@pytest.mark.parametrize(
    "message", MESSAGES, ids=lambda m: type(m).__name__
)
def test_round_trip(message):
    frame = codec().encode(message)
    decoded = codec().decode(frame)
    assert type(decoded) is type(message)
    assert snap(decoded) == snap(message)


def test_round_trip_preserves_wire_size_inputs():
    # The decoded message must be measurable exactly like the original:
    # the traffic meter on the receiving partition bills by wire_size.
    for message in MESSAGES:
        if isinstance(message, (_Packet, _Ack)):
            continue
        decoded = codec().decode(codec().encode(message))
        assert wire_size(decoded) == wire_size(message)


def test_sequence_round_trip():
    frames = codec().encode_sequence(MESSAGES)
    decoded = codec().decode_sequence(frames)
    assert [snap(m) for m in decoded] == [snap(m) for m in MESSAGES]


def test_every_registered_message_type_has_a_round_trip_sample():
    # Exhaustiveness ratchet: registering a message type in
    # PROTOCOL_MESSAGES without adding a boundary-value sample above
    # fails here, keeping the codec-coverage story honest end to end.
    sampled = {type(m) for m in MESSAGES}
    missing = [c.__name__ for c in PROTOCOL_MESSAGES if c not in sampled]
    assert missing == []


def test_protocol_messages_never_ride_the_pickle_fallback():
    # Cross-check of the static codec-fallback lint at runtime: encoding
    # every sample must leave the fallback counter untouched.
    c = codec()
    for message in MESSAGES:
        c.encode(message)
    assert c.pickle_fallbacks == {}


def test_pickle_fallback_round_trips_exotic_payloads():
    # Anything without a field encoder falls back to the tagged pickle
    # frame — the codec must still round-trip it.
    payload = {"custom": (1, 2.5, "x")}
    assert codec().decode(codec().encode(payload)) == payload


def test_move_frame_is_much_smaller_than_pickle():
    import pickle

    frame = codec().encode(SubmitAction(move_action()))
    assert len(frame) < len(pickle.dumps(SubmitAction(move_action()))) / 4


def test_truncated_frame_raises():
    frame = codec().encode(OrderedAction(7, move_action()))
    for cut in (1, 4, len(frame) // 2, len(frame) - 1):
        with pytest.raises(CodecError):
            codec().decode(frame[:cut])


def test_trailing_bytes_raise():
    frame = codec().encode(Heartbeat(1))
    with pytest.raises(CodecError):
        codec().decode(frame + b"\x00")


def test_unknown_tag_raises():
    frame = bytearray(codec().encode(Heartbeat(1)))
    frame[0] = 99  # unassigned tag
    with pytest.raises(CodecError):
        codec().decode(bytes(frame))


def test_corrupt_body_length_raises():
    frame = bytearray(codec().encode(Heartbeat(1)))
    frame[1:5] = (0xFF, 0xFF, 0xFF, 0xFF)  # body length >> actual
    with pytest.raises(CodecError):
        codec().decode(bytes(frame))


def test_bit_flipped_action_sub_tag_raises():
    # Adversarial/corrupt peers must not be able to smuggle garbage
    # through the inner action frame: an unassigned sub-tag byte (the
    # 'M'/'B'/'P' discriminator right after the 5-byte outer header)
    # fails loudly instead of dispatching to the wrong decoder.
    frame = bytearray(codec().encode(SubmitAction(move_action())))
    assert chr(frame[5]) == "M"
    frame[5] ^= 0xFF
    with pytest.raises(CodecError):
        codec().decode(bytes(frame))


def test_oversized_inner_length_raises():
    # A length prefix pointing past the end of the body (here the
    # avatar oid's u32, the first variable-length field of a move
    # frame) must raise, not over-read into adjacent frames.
    frame = bytearray(codec().encode(SubmitAction(move_action())))
    frame[22:26] = (0xFF, 0xFF, 0xFF, 0xFF)
    with pytest.raises(CodecError):
        codec().decode(bytes(frame))


def test_truncated_frame_inside_sequence_raises():
    # decode_sequence walks concatenated frames; a body cut short mid-
    # stream (transport-level truncation) surfaces as a CodecError
    # rather than a silent partial batch.
    frames = codec().encode_sequence(
        [Heartbeat(1), SubmitAction(move_action())]
    )
    for cut in (len(frames) - 1, len(frames) - 8):
        with pytest.raises(CodecError):
            codec().decode_sequence(frames[:cut])


def test_move_decode_without_walls_raises():
    frame = codec().encode(SubmitAction(move_action()))
    with pytest.raises(CodecError):
        MessageCodec(walls=None).decode(frame)


def test_walls_never_cross_the_wire():
    # The wall field is seed-derived and identical everywhere, so moves
    # reference it by token: the frame must stay small no matter how
    # large the field is, and decoding rebinds the decoder's own copy.
    frame = codec().encode(SubmitAction(move_action()))
    assert len(frame) < 256
    decoded = MessageCodec(walls=WALLS).decode(frame)
    assert decoded.action.walls is WALLS
