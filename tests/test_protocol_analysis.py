"""Self-test of the protocol conformance analyzer
(docs/static_analysis.md).

Mirrors test_lint.py's contracts for the protocol checks: (1) the
known-bad corpus pair under tests/lint_corpus/protocol/ fires every
rule in the catalogue exactly once, pinned per-rule and per-site;
(2) the extracted flow graph matches the golden expected_graph.json
byte for byte, so the JSON format consumed by tooling cannot drift
silently; (3) the shipped tree is clean — every registered message has
a handler, a codec branch, and a decode path, which is what lets
scripts/test.sh fail CI on protocol drift; (4) the CLI front end wires
the check up with the documented exit codes and the positional
``protocol`` shorthand; (5) the baseline ratchet rejects stale
suppressions instead of letting the baseline rot.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.protocol import PROTOCOL_RULES, analyze_paths, check_paths

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "lint_corpus" / "protocol"
SCAN_ROOTS = [
    REPO / "src" / "repro" / "core",
    REPO / "src" / "repro" / "net",
    REPO / "src" / "repro" / "baselines",
]


def test_corpus_fires_every_rule_exactly_once():
    findings = check_paths([CORPUS], root=REPO)
    histogram = Counter(f.rule for f in findings)
    assert dict(histogram) == {rule: 1 for rule in PROTOCOL_RULES}


def test_corpus_findings_point_at_the_seeded_sites():
    findings = {f.rule: f for f in check_paths([CORPUS], root=REPO)}
    messages_py = "tests/lint_corpus/protocol/proto_messages.py"
    node_py = "tests/lint_corpus/protocol/proto_node.py"
    assert findings["protocol-orphan"].path == messages_py
    assert "Orphan" in findings["protocol-orphan"].message
    assert findings["codec-fallback"].path == messages_py
    assert "Legacy" in findings["codec-fallback"].message
    assert findings["protocol-unregistered"].path == messages_py
    assert "Rogue" in findings["protocol-unregistered"].message
    assert findings["codec-decode-missing"].path == messages_py
    assert "WriteOnly" in findings["codec-decode-missing"].message
    assert findings["protocol-dead-handler"].path == node_py
    assert "DeadEnd" in findings["protocol-dead-handler"].message
    assert findings["protocol-unaccounted-send"].path == node_py
    assert findings["protocol-unaccounted-handler"].path == node_py


def test_corpus_flow_graph_matches_golden_file():
    model = analyze_paths([CORPUS], root=REPO)
    golden = json.loads((CORPUS / "expected_graph.json").read_text())
    assert model.graph_dict() == golden


def test_missing_registry_is_a_finding_not_a_pass(tmp_path):
    (tmp_path / "plain.py").write_text("class NotAProtocol:\n    pass\n")
    findings = check_paths([tmp_path])
    assert [f.rule for f in findings] == ["protocol-unregistered"]
    assert "no PROTOCOL_MESSAGES registry" in findings[0].message


def test_shipped_protocol_is_conformant():
    model = analyze_paths(SCAN_ROOTS, root=REPO)
    assert model.findings == [], "\n".join(
        f.render() for f in model.findings
    )
    assert model.definition_module == "src/repro/core/messages.py"
    flows = model.flows
    # Every message the engine relies on is present and fully wired.
    for name in ("SubmitAction", "ActionBatch", "CommitNotice", "LeaseGrant"):
        flow = flows[name]
        assert flow.registered
        assert flow.encoder_line is not None
        assert flow.decoder_line is not None
        assert flow.handlers, f"{name} has no dispatch branch"
    # The elastic handoff messages are conservation-tracked.
    assert flows["PartitionUpdate"].conservation == "elastic"
    assert flows["DrainDone"].conservation == "elastic"


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_positional_shorthand_and_exit_codes():
    clean = _run_cli("protocol", "--root", str(REPO), "--json")
    assert clean.returncode == 0, clean.stderr
    document = json.loads(clean.stdout)
    assert document["checks"] == ["protocol"]
    assert document["count"] == 0
    assert document["stale"] == []

    dirty = _run_cli("protocol", "--root", str(REPO), "--json", str(CORPUS))
    assert dirty.returncode == 1
    document = json.loads(dirty.stdout)
    assert document["count"] == len(PROTOCOL_RULES)
    assert {f["rule"] for f in document["findings"]} == set(PROTOCOL_RULES)

    missing = _run_cli("protocol", "no/such/dir")
    assert missing.returncode == 2


def test_cli_all_includes_protocol():
    result = _run_cli("--check", "all", "--root", str(REPO), "--json")
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["checks"] == ["determinism", "rwset", "protocol"]


def test_cli_baseline_ratchet_rejects_stale_suppressions(tmp_path):
    baseline = tmp_path / "baseline.json"
    # Accept the corpus findings, then confirm the baseline silences them.
    wrote = _run_cli(
        "protocol", str(CORPUS), "--root", str(REPO),
        "--baseline", str(baseline), "--write-baseline",
    )
    assert wrote.returncode == 0, wrote.stderr
    accepted = _run_cli(
        "protocol", str(CORPUS), "--root", str(REPO),
        "--baseline", str(baseline), "--json",
    )
    assert accepted.returncode == 0
    assert json.loads(accepted.stdout)["baselined"] == len(PROTOCOL_RULES)

    # A baseline entry for a finding that no longer exists must fail the
    # run: the ratchet only shrinks.
    entries = json.loads(baseline.read_text())
    entries["findings"].append(
        ["tests/lint_corpus/protocol/proto_messages.py", "codec-fallback", 1]
    )
    baseline.write_text(json.dumps(entries))
    stale = _run_cli(
        "protocol", str(CORPUS), "--root", str(REPO),
        "--baseline", str(baseline), "--json",
    )
    assert stale.returncode == 1
    document = json.loads(stale.stdout)
    assert document["count"] == 0  # nothing fresh -- only the stale entry
    assert document["stale"] == [
        ["tests/lint_corpus/protocol/proto_messages.py", "codec-fallback", 1]
    ]

    # Entries outside the scanned paths or rule set are not "stale" --
    # they simply were not re-checked this run.
    entries["findings"] = [["src/unscanned/other.py", "codec-fallback", 9]]
    baseline.write_text(json.dumps(entries))
    unrelated = _run_cli(
        "protocol", str(CORPUS), "--root", str(REPO),
        "--baseline", str(baseline),
    )
    assert unrelated.returncode == 1  # corpus findings are fresh again
    assert "stale suppression" not in unrelated.stderr
