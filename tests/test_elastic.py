"""Tests for elastic load-aware sharding (:mod:`repro.core.elastic`,
docs/elasticity.md): the planner, the off-path byte-identity contract,
flash-crowd rebalancing with the cross-shard audits, partition-version
edge cases (splits racing spans, merges racing handoff drains, lossy
transport), the windowed-scheduler differential, and the deferred-reply
replica-gap regression.
"""

from __future__ import annotations

import pytest

from repro.core.action import ActionId
from repro.core.elastic import ElasticConfig, plan_boundaries, stripes_touching
from repro.core.engine import SeveConfig
from repro.core.sharded import (
    ElasticPartition,
    RegionPartition,
    ShardedSeveEngine,
    ShardingConfig,
)
from repro.errors import ConfigurationError
from repro.harness.architectures import _reliability_suite, build_world
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload
from repro.metrics.shard_audit import audit_sharded_run
from repro.net.faults import FaultPlan


# ---------------------------------------------------------------------------
# Planner and partition geometry
# ---------------------------------------------------------------------------
def test_elastic_config_validates():
    with pytest.raises(ConfigurationError):
        ElasticConfig(interval_ms=0.0)
    with pytest.raises(ConfigurationError):
        ElasticConfig(threshold=1.0)
    with pytest.raises(ConfigurationError):
        ElasticConfig(hysteresis=0)
    with pytest.raises(ConfigurationError):
        ElasticConfig(min_stripe=-1.0)


def test_plan_boundaries_equalizes_uniform_density():
    # All the load in the middle two stripes: the outer cuts move in.
    cuts = plan_boundaries(
        [0.0, 10.0, 10.0, 0.0],
        [(0, 25), (25, 50), (50, 75), (75, 100)],
        100.0,
        1.0,
    )
    assert cuts == [37.5, 50.0, 62.5]
    # Balanced load keeps the equal cuts.
    assert plan_boundaries(
        [5.0, 5.0, 5.0, 5.0],
        [(0, 25), (25, 50), (50, 75), (75, 100)],
        100.0,
        1.0,
    ) == [25.0, 50.0, 75.0]


def test_plan_boundaries_respects_min_stripe():
    cuts = plan_boundaries(
        [100.0, 0.0, 0.0, 0.0],
        [(0, 25), (25, 50), (50, 75), (75, 100)],
        100.0,
        10.0,
    )
    assert cuts == [10.0, 20.0, 30.0]
    widths = [b - a for a, b in zip([0.0] + cuts, cuts + [100.0])]
    assert all(width >= 10.0 for width in widths)


def test_elastic_partition_applies_versions():
    partition = ElasticPartition(100.0, 4)
    assert partition.version == 0
    assert partition.boundaries == [25.0, 50.0, 75.0]
    partition.apply(1, (10.0, 50.0, 90.0))
    assert partition.version == 1
    assert partition.shard_of(5.0) == 0
    assert partition.shard_of(10.0) == 1
    assert partition.shard_of(89.0) == 2
    assert partition.bounds(0) == (0.0, 10.0)
    assert partition.bounds(3) == (90.0, 100.0)
    assert partition.shards_touching(50.0, 40.0) == (1, 2, 3)
    assert partition.shards_touching(50.0, 45.0) == (0, 1, 2, 3)


def test_stripes_touching_matches_partition_classification():
    boundaries = [25.0, 50.0, 75.0]
    partition = ElasticPartition(100.0, 4, boundaries=list(boundaries))
    for x in (0.0, 24.0, 25.0, 49.9, 60.0, 99.0):
        for radius in (0.0, 3.0, 30.0):
            assert stripes_touching(boundaries, x, radius) == (
                partition.shards_touching(x, radius)
            )


def test_settings_reject_elastic_without_shards():
    with pytest.raises(ConfigurationError):
        SimulationSettings(elastic=True, shards=1)
    with pytest.raises(ConfigurationError):
        SimulationSettings(elastic=True, shards=4, elastic_threshold=0.5)


# ---------------------------------------------------------------------------
# Flash-crowd workload: a tight crowd straddling the centre cut of a
# wide world, so two of four static stripes carry all the load.
# ---------------------------------------------------------------------------
FLASH = SimulationSettings(
    num_clients=16,
    num_walls=0,
    moves_per_client=24,
    world_width=4000.0,
    world_height=4000.0,
    spawn="cluster",
    spawn_extent=1000.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=200.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
    shards=4,
)

ELASTIC = FLASH.with_(
    elastic=True, elastic_interval_ms=500.0, elastic_threshold=1.5
)

LOSSY = FaultPlan(loss_rate=0.05, jitter_ms=40.0, duplicate_rate=0.02, seed=7)


def _run_engine(settings, *, elastic=None, plan=None):
    """Drive one sharded engine directly and return the determinism
    fingerprint (final state, per-client observations) plus the engine
    for white-box assertions."""
    settings = settings.with_(fault_plan=plan)
    world = build_world(settings)
    reliability, retry, _ = _reliability_suite(settings)
    config = SeveConfig(
        mode="seve",
        rtt_ms=settings.rtt_ms,
        bandwidth_bps=None,
        omega=settings.omega,
        tick_ms=settings.tick_ms,
        threshold=settings.effective_threshold,
        eval_overhead_ms=settings.eval_overhead_ms,
        fault_plan=plan,
        reliability=reliability,
        retry=retry,
        record_observations=True,
    )
    engine = ShardedSeveEngine(
        world,
        settings.num_clients,
        config,
        sharding=ShardingConfig(
            shards=settings.shards,
            world_width=settings.world_width,
            elastic=elastic,
        ),
    )
    workload = MoveWorkload(engine, world, settings)
    horizon = settings.workload_duration_ms + 2 * settings.move_interval_ms
    if plan is not None:
        engine.start(stop_at=horizon + 15_000.0)
    else:
        engine.start()
    workload.install()
    engine.run(until=horizon)
    engine.run_to_quiescence()
    state = {
        oid: tuple(sorted(engine.state.get(oid).as_dict().items()))
        for oid in sorted(engine.state.ids())
    }
    observations = {
        cid: tuple(client.observations)
        for cid, client in engine.clients.items()
    }
    return state, observations, engine


def _assert_drained(engine):
    """Every elastic epoch retired and every control message consumed."""
    assert all(not server._epochs for server in engine.shard_servers)
    assert engine.shard_servers[0]._pending_version is None
    sent = sum(server.elastic_sent for server in engine.shard_servers)
    received = sum(server.elastic_received for server in engine.shard_servers)
    assert sent == received


# ---------------------------------------------------------------------------
# Off-path byte-identity: --elastic off IS the static engine
# ---------------------------------------------------------------------------
def test_elastic_off_is_structurally_static():
    """With no ElasticConfig the engine builds the exact static
    partition: one shared immutable RegionPartition, no control plane."""
    _, _, engine = _run_engine(FLASH)
    assert type(engine.partition) is RegionPartition
    for server in engine.shard_servers:
        assert server.partition is engine.partition  # shared, never copied
        assert server.elastic is None
        assert server.elastic_sent == 0 and server.elastic_received == 0
        assert server.rebalance_log == []
    assert engine.rebalance_events == ()


def test_inert_elastic_run_matches_static_fingerprint():
    """An armed controller that never fires (threshold unreachable)
    leaves the data plane untouched: same final state, same per-client
    observation logs as the static run.  Only the control traffic
    (load reports) differs, which the fingerprint excludes."""
    static_state, static_obs, _ = _run_engine(FLASH)
    inert = ElasticConfig(interval_ms=500.0, threshold=1e9)
    elastic_state, elastic_obs, engine = _run_engine(FLASH, elastic=inert)
    assert elastic_state == static_state
    assert elastic_obs == static_obs
    assert engine.rebalance_events == ()
    assert type(engine.partition) is ElasticPartition
    _assert_drained(engine)


# ---------------------------------------------------------------------------
# Live rebalancing under the flash crowd
# ---------------------------------------------------------------------------
def test_flash_crowd_rebalances_and_stays_consistent():
    _, _, engine = _run_engine(
        FLASH, elastic=ElasticConfig(interval_ms=500.0, threshold=1.5)
    )
    events = engine.rebalance_events
    assert len(events) >= 1
    for event in events:
        assert event["imbalance"] >= 1.5
        cuts = event["boundaries"]
        assert list(cuts) == sorted(cuts)
    # Variable-width stripes: the final cuts moved off the equal grid.
    lo, hi = engine.stripe_bounds()[0]
    assert (lo, hi) != (0.0, 1000.0)
    # Every shard converged to the same committed partition.
    versions = {server.partition.version for server in engine.shard_servers}
    boundaries = {
        tuple(server.partition.boundaries) for server in engine.shard_servers
    }
    assert len(versions) == 1 and len(boundaries) == 1
    _assert_drained(engine)
    audit = audit_sharded_run(engine)
    assert audit.consistent, audit.summary()
    assert audit.order_violations == []
    assert audit.span_observations > 0


def test_flash_crowd_elasticity_reduces_bottleneck_load():
    """The acceptance signal: under the flash crowd the hottest shard
    serializes strictly less with the rebalancer on."""
    static = run_simulation("seve", FLASH)
    elastic = run_simulation("seve", ELASTIC)
    assert elastic.rebalances >= 1
    static_max = max(row["serialized"] for row in static.shard_rows)
    elastic_max = max(row["serialized"] for row in elastic.shard_rows)
    assert elastic_max < static_max
    assert elastic.shard_audit.consistent, elastic.shard_audit.summary()
    assert elastic.shard_audit.order_violations == []


def test_split_while_spans_in_flight():
    """An aggressive controller (every 200 ms, hysteresis 1) fires
    rebalances while two-phase spans are continuously in flight; the
    union-of-epochs classification must keep every store consistent."""
    _, _, engine = _run_engine(
        FLASH,
        elastic=ElasticConfig(
            interval_ms=200.0, threshold=1.2, hysteresis=1
        ),
    )
    assert len(engine.rebalance_events) >= 2
    spans = sum(
        server.shard_stats.spans_spliced for server in engine.shard_servers
    )
    assert spans > 0
    _assert_drained(engine)
    audit = audit_sharded_run(engine)
    assert audit.consistent, audit.summary()
    assert audit.order_violations == []


def test_merge_while_handoff_barrier_drains():
    """Back-to-back rebalances overlap the bulk handoffs (and organic
    hysteresis handoffs) of earlier epochs: transfers park behind the
    region-sync fence and every begun handoff still completes."""
    _, _, engine = _run_engine(
        FLASH.with_(moves_per_client=32),
        elastic=ElasticConfig(
            interval_ms=300.0, threshold=1.2, hysteresis=1
        ),
    )
    assert len(engine.rebalance_events) >= 2
    bulk = sum(
        server.shard_stats.bulk_handoffs for server in engine.shard_servers
    )
    assert bulk > 0
    out = sum(
        server.shard_stats.handoffs_out for server in engine.shard_servers
    )
    into = sum(
        server.shard_stats.handoffs_in for server in engine.shard_servers
    )
    assert out > 0 and out == into
    assert not any(server._handoffs for server in engine.shard_servers)
    assert not any(server._parked_transfers for server in engine.shard_servers)
    for client_id, client in engine.clients.items():
        assert not client._migrating
    _assert_drained(engine)
    audit = audit_sharded_run(engine)
    assert audit.consistent, audit.summary()


@pytest.mark.slow
@pytest.mark.faults
def test_elastic_survives_lossy_transport_at_k4():
    """Client links drop/jitter/duplicate while the backbone rebalances
    underneath: drains, syncs, and audits must all still hold."""
    _, _, engine = _run_engine(
        FLASH,
        elastic=ElasticConfig(interval_ms=500.0, threshold=1.5),
        plan=LOSSY,
    )
    assert len(engine.rebalance_events) >= 1
    _assert_drained(engine)
    audit = audit_sharded_run(engine)
    assert audit.consistent, audit.summary()
    assert audit.order_violations == []


# ---------------------------------------------------------------------------
# Windowed scheduler differential (docs/parallel.md)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_windowed_scheduler_matches_classic_with_elastic():
    """The epoch-barrier coordinator must apply partition updates in
    the same virtual order as the classic drive: identical rebalance
    log, identical per-shard load, identical final stripes."""
    classic = run_simulation("seve", ELASTIC)
    windowed = run_simulation("seve", ELASTIC.with_(workers=2))
    assert classic.rebalance_events == windowed.rebalance_events
    assert [row["serialized"] for row in classic.shard_rows] == [
        row["serialized"] for row in windowed.shard_rows
    ]
    assert [row["stripe"] for row in classic.shard_rows] == [
        row["stripe"] for row in windowed.shard_rows
    ]
    assert classic.rebalances >= 1
    assert windowed.shard_audit.consistent, windowed.shard_audit.summary()


# ---------------------------------------------------------------------------
# Deferred-reply replica gap (ROADMAP: non-push backends never teach
# replicas about neighbours when the entry commits before the retry)
# ---------------------------------------------------------------------------
def test_committed_deferred_reply_teaches_committed_values():
    """A reply parked by the in-order guard whose entry commits first
    must answer with the committed values, not drop silently."""
    _, _, engine = _run_engine(FLASH)
    server = next(s for s in engine.shard_servers if s.clients)
    # Find a (client, object) pair the server has never taught: in the
    # wide world some avatar is out of every other client's visibility.
    target = next(iter(sorted(server.clients)))
    oid = next(
        oid
        for oid in sorted(server.state.ids())
        if server.known.needs(target, oid)
    )
    # Park a reply to a position that has already committed, with the
    # commit-time record _advance_frontier would have left behind.
    pos = server._base_pos - 1
    server._deferred_replies[target] = [pos]
    server._deferred_commits[pos] = (ActionId(-9, 0), frozenset({oid}))
    sent_before = server.stats.blind_writes_sent
    server._retry_deferred_replies()
    assert server.stats.blind_writes_sent == sent_before + 1
    assert not server.known.needs(target, oid)  # the client was taught
    assert server._deferred_replies.get(target) is None
    assert pos not in server._deferred_commits  # GC'd with the drain


def test_advance_frontier_teaches_parked_reply_through_real_pipeline():
    """End-to-end through the real frontier: an entry commits while a
    reply to it is parked; _advance_frontier records its written ids
    and the retry it triggers answers with a blind write of them."""
    from repro.core.action import ActionResult, BlindWrite
    from repro.core.closure import QueueEntry

    _, _, engine = _run_engine(FLASH.with_(shards=2))
    server = next(s for s in engine.shard_servers if s.clients)
    target = next(iter(sorted(server.clients)))
    oid = next(
        oid
        for oid in sorted(server.state.ids())
        if server.known.needs(target, oid)
    )
    # Enqueue a committed-ready server entry (a value-neutral blind
    # write of the object's current state) exactly as _admit would,
    # with a reply to it already parked for the target client.
    values = {oid: dict(server.state.get(oid).as_dict())}
    blind = BlindWrite.from_server(9999, values)
    entry = QueueEntry(server._next_pos, blind, arrived_at=engine.sim.now)
    server._next_pos += 1
    server._entries.append(entry)
    if server._writer_index is not None:
        server._writer_index.note_enqueued(entry.pos, blind.writes)
    entry.valid = True
    entry.completion = ActionResult.of(values)
    server._deferred_replies[target] = [entry.pos]
    sent_before = server.stats.blind_writes_sent
    server._advance_frontier()
    # The frontier committed the entry, the retry taught the client,
    # and the commit record was GC'd with the drain.
    assert server._base_pos == entry.pos + 1
    assert server.stats.blind_writes_sent == sent_before + 1
    assert not server.known.needs(target, oid)
    assert server._deferred_replies.get(target) is None
    assert server._deferred_commits == {}
