"""Property-based tests of the core structural invariants.

* LockTable: mutual exclusion and reader/writer exclusion hold under
  arbitrary acquire/release interleavings.
* InformationBound: the bound it promises — no admitted action has a
  conflicting (still-valid) predecessor farther than the threshold.
* API surface: every re-exported name resolves.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.action import Action, ActionId
from repro.core.closure import QueueEntry
from repro.core.info_bound import InformationBound
from repro.state.locks import LockTable
from repro.world.geometry import Vec2


# ---------------------------------------------------------------------------
# LockTable
# ---------------------------------------------------------------------------
lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release"]),
        st.integers(min_value=0, max_value=9),     # request id
        st.sets(st.sampled_from("abcd"), max_size=2),  # shared
        st.sets(st.sampled_from("abcd"), max_size=2),  # exclusive
    ),
    max_size=40,
)


@given(ops=lock_ops)
def test_lock_table_exclusion_invariants(ops):
    table = LockTable()
    live = set()
    for op, request_id, shared, exclusive in ops:
        if op == "acquire" and request_id not in live:
            table.acquire(
                request_id,
                shared=frozenset(shared),
                exclusive=frozenset(exclusive),
                on_granted=lambda: None,
            )
            live.add(request_id)
        elif op == "release" and request_id in live and table.holds(request_id):
            table.release(request_id)
            live.discard(request_id)
        # Invariants after every step:
        for oid in "abcd":
            writer = table.writer_of(oid)
            readers = table.reader_count(oid)
            # An exclusively held object has no concurrent readers.
            if writer is not None:
                assert readers == 0
            assert readers >= 0


@given(ops=lock_ops)
def test_lock_table_eventually_grants_everything(ops):
    """Releasing all held locks must leave no grantable waiter stuck."""
    table = LockTable()
    live = []
    for op, request_id, shared, exclusive in ops:
        if op == "acquire" and request_id not in live:
            table.acquire(
                request_id,
                shared=frozenset(shared),
                exclusive=frozenset(exclusive),
                on_granted=lambda: None,
            )
            live.append(request_id)
    # Drain: release in acquisition order whatever currently holds.
    for request_id in list(live):
        if table.holds(request_id):
            table.release(request_id)
    # Anything still waiting must have been granted by the rescans and
    # then left held; release those too, until nothing waits.
    for _ in range(len(live)):
        if table.waiting_count == 0:
            break
        for request_id in list(live):
            if table.holds(request_id):
                table.release(request_id)
    assert table.waiting_count == 0


# ---------------------------------------------------------------------------
# InformationBound
# ---------------------------------------------------------------------------
class _SpatialAction(Action):
    def __init__(self, seq, position, reads, writes):
        super().__init__(
            ActionId(0, seq),
            reads=frozenset(reads) | frozenset(writes),
            writes=frozenset(writes),
            position=position,
        )

    def compute(self, store):
        return {}


entry_specs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=300),   # x
        st.floats(min_value=0, max_value=300),   # y
        st.sets(st.sampled_from("pqrs"), min_size=1, max_size=2),  # writes
        st.sets(st.sampled_from("pqrs"), max_size=2),              # extra reads
    ),
    min_size=1,
    max_size=25,
)


@given(specs=entry_specs, threshold=st.floats(min_value=5, max_value=400))
def test_admitted_actions_respect_the_information_bound(specs, threshold):
    """The model's contract: after validation, no admitted action has a
    conflicting still-valid predecessor beyond the threshold."""
    entries = []
    for seq, (x, y, writes, reads) in enumerate(specs):
        entries.append(
            QueueEntry(
                seq,
                _SpatialAction(seq, Vec2(x, y), reads, writes),
                arrived_at=float(seq),
            )
        )
    bound = InformationBound(threshold)
    bound.validate(entries, 0)
    for index, entry in enumerate(entries):
        if not entry.valid:
            continue
        accumulated = set(entry.action.reads)
        for j in range(index - 1, -1, -1):
            earlier = entries[j]
            if not earlier.valid:
                continue
            if not (earlier.action.writes & accumulated):
                continue
            distance = entry.action.position.distance_to(
                earlier.action.position
            )
            assert distance <= threshold, (
                f"admitted action {index} conflicts with {j} at {distance}"
            )
            accumulated |= earlier.action.reads


@given(specs=entry_specs)
def test_zero_threshold_only_drops_conflicting_actions(specs):
    """Non-conflicting actions are never dropped, whatever the bound."""
    entries = []
    for seq, (x, y, writes, reads) in enumerate(specs):
        entries.append(
            QueueEntry(
                seq,
                _SpatialAction(seq, Vec2(x, y), reads, writes),
                arrived_at=float(seq),
            )
        )
    bound = InformationBound(0.0)
    bound.validate(entries, 0)
    for index, entry in enumerate(entries):
        if entry.valid:
            continue
        # A dropped action must actually conflict with some valid
        # predecessor (the drop was not gratuitous).
        accumulated = set(entry.action.reads)
        conflicting = any(
            entries[j].valid and (entries[j].action.writes & accumulated)
            for j in range(index - 1, -1, -1)
        )
        assert conflicting


# ---------------------------------------------------------------------------
# API surface
# ---------------------------------------------------------------------------
def test_all_reexports_resolve():
    import repro
    import repro.baselines
    import repro.metrics
    import repro.state
    import repro.world

    for module in (repro, repro.baselines, repro.metrics, repro.state,
                   repro.world):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"
