"""Regression tests for the dynamic RW-set sanitizer
(docs/static_analysis.md) — and for the protocol hole it closes.

:meth:`Action.apply` has always rejected values computed for undeclared
*writes*, but an undeclared *read* was invisible: an action whose
``compute`` peeks at an object outside RS(a) still applies cleanly, and
two replicas that agree on RS(a) but differ on the peeked object
silently diverge — exactly the Theorem 1 failure the declared sets
exist to prevent.  The first tests demonstrate that divergence on plain
stores; the rest prove the sanitizer catches the lie, in both modes, on
both the unit store and a fully assembled engine.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    RWSetViolation,
    SanitizedStore,
    SanitizerRecorder,
    ambient_mode,
    wrap_store,
)
from repro.core.action import Action, ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.errors import ProtocolError
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore


class LyingReadAction(Action):
    """Declares RS = WS = {target} but bases its write on ``peek``."""

    def __init__(self, action_id: ActionId, target: str, peek: str = "wind"):
        super().__init__(
            action_id,
            reads=frozenset({target}),
            writes=frozenset({target}),
        )
        self.target = target
        self.peek = peek

    def compute(self, store):
        direction = store.get(self.peek).get("direction")  # lint: allow(rwset-escape)
        return {self.target: {"pos": direction}}


class LyingWriteAction(Action):
    """Declares RS = WS = {target} but merges state into 'bystander'."""

    def __init__(self, action_id: ActionId, target: str):
        super().__init__(
            action_id,
            reads=frozenset({target}),
            writes=frozenset({target}),
        )
        self.target = target

    def compute(self, store):
        return {self.target: {"pos": store.get(self.target).get("pos")}}

    def _apply(self, store):
        store.merge({"bystander": {"hit": True}})  # lint: allow(rwset-escape)
        return super()._apply(store)


def _replica(wind_direction: int, store_cls=ObjectStore, **kwargs):
    return store_cls(
        [
            WorldObject("avatar", {"pos": 0}),
            WorldObject("wind", {"direction": wind_direction}),
            WorldObject("bystander", {"hit": False}),
        ],
        **kwargs,
    )


def test_undeclared_read_diverges_replicas_without_the_sanitizer():
    # Two replicas agree on RS(a) = {avatar} but differ on 'wind'.
    east, west = _replica(1), _replica(2)
    result_east = LyingReadAction(ActionId(0, 0), "avatar").apply(east)
    result_west = LyingReadAction(ActionId(0, 0), "avatar").apply(west)
    # Nothing raised — and the replicas have now silently diverged.
    assert result_east != result_west
    assert east.get("avatar") != west.get("avatar")


def test_sanitizer_catches_the_undeclared_read():
    store = _replica(1, SanitizedStore)
    with pytest.raises(RWSetViolation) as excinfo:
        LyingReadAction(ActionId(0, 0), "avatar").apply(store)
    violation = excinfo.value.violation
    assert violation.kind == "read"
    assert violation.oid == "wind"
    assert violation.declared == frozenset({"avatar"})
    assert "LyingReadAction" in violation.render()
    # The store was not corrupted before the raise.
    assert store.get("avatar").get("pos") == 0


def test_sanitizer_catches_the_undeclared_write():
    store = _replica(1, SanitizedStore)
    with pytest.raises(RWSetViolation) as excinfo:
        LyingWriteAction(ActionId(0, 0), "avatar").apply(store)
    assert excinfo.value.violation.kind == "write"
    assert excinfo.value.violation.oid == "bystander"


def test_report_mode_collects_and_lets_the_run_continue():
    recorder = SanitizerRecorder(mode="report")
    store = _replica(1, SanitizedStore, recorder=recorder, label="c0")
    LyingReadAction(ActionId(0, 0), "avatar").apply(store)
    LyingWriteAction(ActionId(0, 1), "avatar").apply(store)
    assert [v.kind for v in recorder.violations] == ["read", "write"]
    assert all(v.store == "c0" for v in recorder.violations)
    # The lying write went through in report mode.
    assert store.get("bystander").get("hit") is True


def test_honest_apply_is_clean_but_checked():
    class HonestAction(Action):
        def __init__(self):
            super().__init__(
                ActionId(0, 0),
                reads=frozenset({"avatar"}),
                writes=frozenset({"avatar"}),
            )

        def compute(self, store):
            return {"avatar": {"pos": store.get("avatar").get("pos") + 1}}

    recorder = SanitizerRecorder(mode="raise")
    store = _replica(1, SanitizedStore, recorder=recorder)
    HonestAction().apply(store)
    assert recorder.violations == []
    assert recorder.scopes_entered == 1
    assert recorder.reads_checked > 0
    assert store.get("avatar").get("pos") == 1


def test_accesses_outside_an_apply_are_unchecked():
    # Reconciliation/seeding legitimately touch arbitrary objects.
    store = _replica(1, SanitizedStore)
    assert store.get("wind").get("direction") == 1
    store.merge({"bystander": {"hit": True}})
    assert store.recorder.violations == []


def test_snapshot_stays_sanitized_and_shares_the_recorder():
    store = _replica(1, SanitizedStore)
    clone = store.snapshot()
    assert isinstance(clone, SanitizedStore)
    assert clone.recorder is store.recorder
    with pytest.raises(RWSetViolation):
        LyingReadAction(ActionId(0, 0), "avatar").apply(clone)


def test_wrap_store_is_a_view_not_a_copy():
    plain = _replica(1)
    wrapped = wrap_store(plain, SanitizerRecorder(mode="report"), label="c1")
    wrapped.merge({"avatar": {"pos": 9}})
    assert plain.get("avatar").get("pos") == 9


def test_plain_store_has_no_scope_hook():
    # The zero-overhead contract: unsanitized stores expose no scope at
    # all, so Action.apply takes the unchecked fast path.
    assert ObjectStore.action_scope is None
    assert _replica(1).action_scope is None


def test_undeclared_write_values_still_raise_protocol_error():
    # The pre-existing half of the check is unchanged: computing values
    # for an undeclared object raises even on a plain store.
    class OverreachingAction(Action):
        def __init__(self):
            super().__init__(
                ActionId(0, 0),
                reads=frozenset({"avatar", "wind"}),
                writes=frozenset({"avatar"}),
            )

        def compute(self, store):
            return {"wind": {"direction": 0}}

    with pytest.raises(ProtocolError):
        OverreachingAction().apply(_replica(1))


def test_engine_runs_under_the_sanitizer_and_actually_checks(small_world):
    # The conftest fixture sets the ambient mode, so an unset config
    # resolves to "raise" and every client replica gets wrapped.
    assert ambient_mode() == "raise"
    engine = SeveEngine(small_world, 4, SeveConfig(mode="seve"))
    assert engine.rwset_recorder is not None
    engine.start(stop_at=5_000)
    for client_id in (0, 1):
        client = engine.clients[client_id]
        move = small_world.plan_move(
            engine.planning_store(client_id),
            client_id,
            client.next_action_id(),
            cost_ms=1.0,
        )
        engine.submit(client_id, move)
    engine.sim.run(until=5_000)
    assert engine.rwset_recorder.scopes_entered > 0
    assert engine.rwset_recorder.reads_checked > 0
    assert engine.rwset_recorder.violations == []


def test_engine_report_mode_surfaces_a_lying_action(small_world):
    # Full seeding so the undeclared object exists in the replica: the
    # lie then goes through silently instead of tripping a missing-read
    # abort — precisely the case only the sanitizer can see.
    engine = SeveEngine(
        small_world,
        2,
        SeveConfig(
            mode="incomplete", rwset_sanitizer="report", seed_full_state=True
        ),
    )
    engine.start(stop_at=3_000)
    target = small_world.avatar_of(0)
    peeked = small_world.avatar_of(1)
    lying = LyingReadAction(
        engine.clients[0].next_action_id(), target, peek=peeked
    )
    engine.submit(0, lying)
    engine.sim.run(until=3_000)
    assert any(v.oid == peeked for v in engine.rwset_recorder.violations)
    assert all(v.kind == "read" for v in engine.rwset_recorder.violations)


def test_config_rejects_unknown_sanitizer_mode():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SeveConfig(rwset_sanitizer="loud")
