"""Tests for the destructible-environment (siege) world."""

from __future__ import annotations

import pytest

from repro.core.action import ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.state.store import ObjectStore
from repro.world.avatar import avatar_id, avatar_object
from repro.world.geometry import Vec2
from repro.world.siege import (
    DemolishAction,
    SiegeConfig,
    SiegeMoveAction,
    SiegeWorld,
    wall_id,
)
from repro.world.walls import Wall, WallField


def tiny_world(num_walls=0, **kwargs):
    return SiegeWorld(2, SiegeConfig(num_walls=num_walls, seed=3, **kwargs))


def one_wall_setup():
    """An avatar facing a single wall directly in its path."""
    geometry = WallField(
        [Wall(0, Vec2(55, 40), Vec2(55, 60))], width=100.0, height=100.0
    )
    store = ObjectStore([
        avatar_object(0, Vec2(50, 50), heading=0.0, speed=10.0),
    ])
    from repro.state.objects import WorldObject

    store.put(WorldObject(wall_id(0), {"intact": True}))
    return geometry, store


def make_move(geometry, seq=0):
    return SiegeMoveAction(
        ActionId(0, seq),
        avatar_id(0),
        neighbors=frozenset(),
        wall_objects=frozenset({wall_id(0)}),
        geometry=geometry,
        duration_s=1.0,
        effect_range=10.0,
        position=Vec2(50, 50),
        cost_ms=1.0,
    )


def test_intact_wall_blocks_movement():
    geometry, store = one_wall_setup()
    make_move(geometry).apply(store)
    me = store.get(avatar_id(0))
    assert (me["x"], me["y"]) == (50.0, 50.0)
    assert me["bumps"] == 1


def test_rubble_is_walkable():
    geometry, store = one_wall_setup()
    store.get(wall_id(0))["intact"] = False
    make_move(geometry).apply(store)
    me = store.get(avatar_id(0))
    assert me["x"] == pytest.approx(60.0)
    assert me["bumps"] == 0


def test_move_reads_the_walls_on_its_path():
    geometry, _ = one_wall_setup()
    action = make_move(geometry)
    assert wall_id(0) in action.reads
    assert action.writes == frozenset({avatar_id(0)})


def test_demolish_breaks_wall_once():
    geometry, store = one_wall_setup()
    demolish = DemolishAction(
        ActionId(0, 1), avatar_id(0), wall_id(0),
        position=Vec2(50, 50), reach=12.0,
    )
    result = demolish.apply(store)
    assert store.get(wall_id(0))["intact"] is False
    assert result.written_ids() == frozenset({wall_id(0)})
    # Demolishing rubble is a no-op.
    assert demolish.apply(store).values() == {}


def test_dead_sapper_aborts():
    geometry, store = one_wall_setup()
    store.get(avatar_id(0))["alive"] = False
    demolish = DemolishAction(
        ActionId(0, 1), avatar_id(0), wall_id(0),
        position=Vec2(50, 50), reach=12.0,
    )
    assert demolish.apply(store).aborted


def test_world_objects_include_walls():
    world = tiny_world(num_walls=20)
    objects = list(world.initial_objects())
    kinds = {obj.oid.split(":")[0] for obj in objects}
    assert kinds == {"avatar", "wall"}
    assert len(objects) == 22


def test_plan_move_declares_path_walls():
    world = SiegeWorld(1, SiegeConfig(num_walls=150, seed=9, spawn_extent=40.0))
    store = ObjectStore(world.initial_objects())
    action = world.plan_move(store, 0, ActionId(0, 0), cost_ms=1.0)
    wall_reads = {oid for oid in action.reads if oid.startswith("wall:")}
    # Dense wall field: the path neighbourhood is non-empty.
    assert wall_reads
    assert action.reads >= wall_reads | {avatar_id(0)}


def test_plan_demolish_picks_nearest_intact_wall():
    world = SiegeWorld(1, SiegeConfig(num_walls=150, seed=9, spawn_extent=40.0))
    store = ObjectStore(world.initial_objects())
    action = world.plan_demolish(store, 0, ActionId(0, 0))
    assert action is not None
    store.get(action.wall_oid)["intact"] = False
    second = world.plan_demolish(store, 0, ActionId(0, 1))
    if second is not None:  # another wall may be in reach
        assert second.wall_oid != action.wall_oid


def test_plan_demolish_none_when_out_of_reach():
    world = tiny_world(num_walls=0)
    store = ObjectStore(world.initial_objects())
    assert world.plan_demolish(store, 0, ActionId(0, 0)) is None


def test_demolition_consistent_across_replicas_under_seve():
    """Environment mutation flows through the closure machinery: a wall
    broken by one client is (eventually) rubble on every replica that
    cares, and never 'half-broken'."""
    world = SiegeWorld(3, SiegeConfig(num_walls=80, seed=5, spawn_extent=30.0))
    engine = SeveEngine(
        world, 3,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0, seed_full_state=True),
    )
    engine.start(stop_at=60_000)

    def act(cid, planner):
        client = engine.client(cid)
        action = planner(client.optimistic, cid, client.next_action_id())
        if action is not None:
            client.submit(action)

    # Client 0 demolishes; everyone walks around before and after.
    for step in range(6):
        t = 100.0 + step * 300.0
        for cid in range(3):
            engine.sim.schedule(
                t + cid,
                lambda cid=cid: act(
                    cid,
                    lambda s, c, a: world.plan_move(s, c, a, cost_ms=1.0),
                ),
            )
        if step == 2:
            engine.sim.schedule(
                t + 50.0,
                lambda: act(
                    0,
                    lambda s, c, a: world.plan_demolish(s, c, a, cost_ms=1.0),
                ),
            )
    engine.run(until=4_000)
    engine.run_to_quiescence()

    from repro.metrics.consistency import ConsistencyChecker

    report = ConsistencyChecker(engine.state).check_all(
        {cid: c.stable for cid, c in engine.clients.items()}
    )
    assert report.consistent, report.violations[:3]
    # The demolition actually landed somewhere.
    broken = [
        obj.oid for obj in engine.state.objects()
        if obj.oid.startswith("wall:") and obj.get("intact") is False
    ]
    assert len(broken) <= 1  # at most the one demolition committed
