"""Unit tests for the deterministic fault-injection plan
(:mod:`repro.net.faults`): RNG discipline, scheduling primitives,
serialization, the CLI crash-plan syntax, and the retry policy.

The determinism contract (docs/fault_model.md): the injector draws from
its dedicated RNG only for features whose rate is non-zero, in a fixed
per-message order, so (workload seed, fault seed) replays identically
and a null plan performs zero draws.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LivenessConfig,
    Partition,
    ReliabilityConfig,
    RetryPolicy,
    parse_crash_plan,
)
from repro.net.link import Link
from repro.net.simulator import Simulator


# ---------------------------------------------------------------------------
# FaultInjector determinism
# ---------------------------------------------------------------------------
def test_same_seed_replays_identical_decisions():
    plan = FaultPlan(loss_rate=0.2, jitter_ms=40.0, duplicate_rate=0.1, seed=42)
    first = [FaultInjector(plan).decide(0, -1, t) for t in range(500)]
    second = [FaultInjector(plan).decide(0, -1, t) for t in range(500)]
    assert first == second


def test_different_seeds_diverge():
    base = FaultPlan(loss_rate=0.2, jitter_ms=40.0, seed=1)
    other = FaultPlan(loss_rate=0.2, jitter_ms=40.0, seed=2)
    a = [FaultInjector(base).decide(0, -1, t) for t in range(200)]
    b = [FaultInjector(other).decide(0, -1, t) for t in range(200)]
    assert a != b


def test_null_plan_draws_nothing():
    """A null plan must not touch the RNG at all — enabling zero
    features takes the identical code path as having no plan."""
    injector = FaultInjector(FaultPlan(seed=7))
    before = injector.rng.getstate()
    for t in range(100):
        assert injector.decide(0, -1, float(t)) == (False, 0.0, False)
    assert injector.rng.getstate() == before


def test_disabled_features_skip_their_draws():
    """A loss-only plan consumes exactly one draw per message, so its
    loss decisions match a loss+jitter plan's loss decisions never can —
    but two loss-only plans with different *other* fields do match."""
    loss_only = FaultPlan(loss_rate=0.3, seed=5)
    with_crashes = FaultPlan(
        loss_rate=0.3, seed=5, crashes=(CrashWindow(0, 100.0),)
    )
    a = [FaultInjector(loss_only).decide(0, -1, t) for t in range(300)]
    b = [FaultInjector(with_crashes).decide(0, -1, t) for t in range(300)]
    assert a == b  # crash schedule consumes no per-message randomness


def test_loss_rate_is_roughly_honoured():
    injector = FaultInjector(FaultPlan(loss_rate=0.25, seed=11))
    drops = sum(
        injector.decide(0, -1, float(t))[0] for t in range(4000)
    )
    assert 0.20 < drops / 4000 < 0.30


def test_jitter_bounded_by_plan():
    injector = FaultInjector(FaultPlan(jitter_ms=30.0, seed=3))
    delays = [injector.decide(0, -1, float(t))[1] for t in range(1000)]
    assert all(0.0 <= d < 30.0 for d in delays)
    assert max(delays) > 20.0  # the range is actually exercised


def test_dropped_messages_are_never_duplicated():
    injector = FaultInjector(
        FaultPlan(loss_rate=0.5, duplicate_rate=0.9, seed=9)
    )
    for t in range(2000):
        dropped, _, duplicate = injector.decide(0, -1, float(t))
        assert not (dropped and duplicate)


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------
def test_partition_severs_members_during_window():
    part = Partition(1000.0, 2000.0, hosts=frozenset({3}))
    assert not part.severs(3, -1, 999.9)
    assert part.severs(3, -1, 1000.0)  # src is a member
    assert part.severs(-1, 3, 1500.0)  # dst is a member
    assert not part.severs(0, -1, 1500.0)  # outsiders unaffected
    assert not part.severs(3, -1, 2000.0)  # window is half-open


def test_total_blackout_partition():
    part = Partition(0.0, 100.0)  # hosts=None: everybody
    assert part.severs(0, -1, 50.0)
    assert part.severs(7, 4, 50.0)


def test_partition_drop_consumes_no_loss_draw():
    """While partitioned, messages are dropped without touching the RNG
    stream, so post-partition decisions are unaffected by how much
    traffic the partition swallowed."""
    part = Partition(0.0, 10.0)
    plan = FaultPlan(loss_rate=0.3, seed=5, partitions=(part,))
    quiet = FaultPlan(loss_rate=0.3, seed=5)
    a = FaultInjector(plan)
    for t in range(50):  # all inside the window: dropped, zero draws
        assert a.decide(0, -1, float(t) / 10.0)[0] is True
    b = FaultInjector(quiet)
    after_a = [a.decide(0, -1, 100.0 + t) for t in range(100)]
    after_b = [b.decide(0, -1, 100.0 + t) for t in range(100)]
    assert after_a == after_b


def test_empty_partition_window_rejected():
    with pytest.raises(ConfigurationError):
        Partition(100.0, 100.0)


# ---------------------------------------------------------------------------
# Plan validation and serialization
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": 1.0},
        {"loss_rate": -0.1},
        {"duplicate_rate": 1.5},
        {"jitter_ms": -1.0},
    ],
)
def test_bad_plan_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FaultPlan(**kwargs)


def test_plan_roundtrips_through_dict():
    plan = FaultPlan(
        loss_rate=0.05,
        jitter_ms=50.0,
        duplicate_rate=0.02,
        seed=17,
        partitions=(Partition(100.0, 200.0, hosts=frozenset({1, 2})),),
        crashes=(CrashWindow(0, 800.0, 2500.0), CrashWindow(3, 1200.0)),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_null_plan_detection():
    assert FaultPlan().is_null
    assert FaultPlan(seed=99).is_null  # the seed alone injects nothing
    assert not FaultPlan(loss_rate=0.01).is_null
    assert not FaultPlan(jitter_ms=1.0).is_null
    assert not FaultPlan(crashes=(CrashWindow(0, 1.0),)).is_null


# ---------------------------------------------------------------------------
# Crash plans
# ---------------------------------------------------------------------------
def test_parse_crash_plan():
    windows = parse_crash_plan("0@800:2500, 3@1200")
    assert windows == (
        CrashWindow(0, 800.0, 2500.0),
        CrashWindow(3, 1200.0, None),
    )
    assert parse_crash_plan("") == ()


def test_parse_crash_plan_shard_targets():
    windows = parse_crash_plan("s1@2000:6000, 0@800")
    assert windows == (
        CrashWindow(-1, 2000.0, 6000.0, shard_index=1),
        CrashWindow(0, 800.0, None),
    )
    assert windows[0].is_shard and not windows[1].is_shard
    assert windows[0].target_label == "s1"
    assert FaultPlan(crashes=windows).shard_crashes == windows[:1]
    assert FaultPlan(crashes=windows).client_crashes == windows[1:]


@pytest.mark.parametrize("text", ["0", "x@100", "0@100:50", "0@-5", "s@100", "s-1@100"])
def test_bad_crash_plan_rejected(text):
    with pytest.raises(ConfigurationError):
        parse_crash_plan(text)


@pytest.mark.parametrize(
    "text, offender",
    [
        ("0@500:1500, 0@1000:2000", "0@1000:2000"),  # overlapping windows
        ("3@500, 3@2000", "3@2000"),  # first window never reconnects
        ("s1@500:1500, s1@1500:2500, s1@1600", "s1@1600"),  # back-to-back ok, re-crash mid-window not
    ],
)
def test_overlapping_crash_windows_rejected_naming_offender(text, offender):
    with pytest.raises(ConfigurationError) as excinfo:
        parse_crash_plan(text)
    assert offender in str(excinfo.value)


def test_disjoint_crash_windows_per_target_accepted():
    windows = parse_crash_plan("0@500:1500, 0@1500:2500, s1@500:900, s1@900")
    assert len(windows) == 4


def test_reconnect_must_follow_crash():
    with pytest.raises(ConfigurationError):
        CrashWindow(0, 1000.0, reconnect_at_ms=1000.0)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_backoff_grows_and_caps():
    policy = RetryPolicy(
        timeout_ms=100.0, backoff=2.0, max_timeout_ms=500.0, jitter_ms=0.0
    )
    rng = random.Random(0)
    delays = [policy.delay(k, rng) for k in range(6)]
    assert delays[:3] == [100.0, 200.0, 400.0]
    assert delays[3:] == [500.0, 500.0, 500.0]  # capped


def test_retry_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(timeout_ms=100.0, jitter_ms=20.0)
    a = [policy.delay(0, random.Random(4)) for _ in range(5)]
    b = [policy.delay(0, random.Random(4)) for _ in range(5)]
    assert a == b
    assert all(100.0 <= d < 120.0 for d in a)


def test_suite_factories_scale_with_rtt():
    retry = RetryPolicy.for_rtt(238.0)
    assert retry.timeout_ms >= 4 * 238.0
    reliability = ReliabilityConfig.for_rtt(238.0)
    assert reliability.rto_ms > 238.0  # past one round trip
    with pytest.raises(ConfigurationError):
        LivenessConfig(heartbeat_interval_ms=1000.0, timeout_ms=500.0)


# ---------------------------------------------------------------------------
# Link under jitter: FIFO preserved
# ---------------------------------------------------------------------------
def test_link_clamps_jittered_arrivals_to_fifo():
    """Reordering jitter would violate the per-link FIFO every protocol
    in the repo assumes; the link clamps arrivals to stay monotone."""
    sim = Simulator()
    link = Link(sim, 0, -1, latency_ms=50.0, bandwidth_bps=None)
    arrivals = []
    # First message gets huge extra delay, second gets none: without the
    # clamp the second would overtake the first.
    link.transmit(100, lambda: arrivals.append("first") or True, 500.0)
    link.transmit(100, lambda: arrivals.append("second") or True, 0.0)
    sim.run()
    assert arrivals == ["first", "second"]


def test_link_without_jitter_unchanged():
    """extra_delay=0 must be a provable no-op: arrivals are already
    monotone (store-and-forward + constant latency), so the clamp never
    fires and timings match the pre-fault path exactly."""
    sim = Simulator()
    link = Link(sim, 0, -1, latency_ms=50.0, bandwidth_bps=8_000.0)
    times = []
    for _ in range(5):
        link.transmit(100, lambda: times.append(sim.now) or True)
    sim.run()
    # 100 bytes at 8kbps = 100ms serialization each, + 50ms latency.
    assert times == [150.0, 250.0, 350.0, 450.0, 550.0]
