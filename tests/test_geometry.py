"""Unit + property tests for 2-D geometry primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.world.geometry import (
    Vec2,
    bounding_box,
    clamp,
    point_segment_distance,
    reflect_heading_90,
    segment_intersection_point,
    segments_intersect,
)

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
vectors = st.builds(Vec2, coords, coords)


# ---------------------------------------------------------------------------
# Vec2
# ---------------------------------------------------------------------------
def test_vector_arithmetic():
    assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
    assert Vec2(3, 4) - Vec2(1, 1) == Vec2(2, 3)
    assert Vec2(1, 2).scaled(3) == Vec2(3, 6)


def test_norm_and_distance():
    assert Vec2(3, 4).norm() == 5.0
    assert Vec2(0, 0).distance_to(Vec2(3, 4)) == 5.0


def test_dot_and_cross():
    assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
    assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
    assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0


def test_normalized_unit_length():
    v = Vec2(3, 4).normalized()
    assert v.norm() == pytest.approx(1.0)
    assert Vec2(0, 0).normalized() == Vec2(0, 0)


def test_heading_and_from_heading_roundtrip():
    for angle in (-3.0, -1.5, 0.0, 0.7, 2.9):
        v = Vec2.from_heading(angle)
        assert v.heading() == pytest.approx(angle)
        assert v.norm() == pytest.approx(1.0)


def test_rotated_quarter_turn():
    v = Vec2(1, 0).rotated(math.pi / 2)
    assert v.x == pytest.approx(0.0, abs=1e-12)
    assert v.y == pytest.approx(1.0)


def test_perpendicular():
    assert Vec2(1, 0).perpendicular() == Vec2(0, 1)
    assert Vec2(0, 1).perpendicular() == Vec2(-1, 0)


def test_clamp():
    assert clamp(5.0, 0.0, 10.0) == 5.0
    assert clamp(-1.0, 0.0, 10.0) == 0.0
    assert clamp(11.0, 0.0, 10.0) == 10.0


# ---------------------------------------------------------------------------
# Segment intersection
# ---------------------------------------------------------------------------
def test_crossing_segments_intersect():
    assert segments_intersect(Vec2(0, 0), Vec2(10, 10), Vec2(0, 10), Vec2(10, 0))


def test_parallel_segments_do_not_intersect():
    assert not segments_intersect(Vec2(0, 0), Vec2(10, 0), Vec2(0, 1), Vec2(10, 1))


def test_touching_endpoint_counts():
    assert segments_intersect(Vec2(0, 0), Vec2(5, 5), Vec2(5, 5), Vec2(10, 0))


def test_collinear_overlap_intersects():
    assert segments_intersect(Vec2(0, 0), Vec2(10, 0), Vec2(5, 0), Vec2(15, 0))


def test_collinear_disjoint_does_not_intersect():
    assert not segments_intersect(Vec2(0, 0), Vec2(4, 0), Vec2(5, 0), Vec2(9, 0))


def test_t_junction_intersects():
    assert segments_intersect(Vec2(0, 0), Vec2(10, 0), Vec2(5, -5), Vec2(5, 0))


def test_intersection_point_of_cross():
    p = segment_intersection_point(Vec2(0, 0), Vec2(10, 10), Vec2(0, 10), Vec2(10, 0))
    assert p.x == pytest.approx(5.0)
    assert p.y == pytest.approx(5.0)


def test_intersection_point_none_when_disjoint():
    assert (
        segment_intersection_point(Vec2(0, 0), Vec2(1, 0), Vec2(5, 5), Vec2(6, 5))
        is None
    )


def test_collinear_overlap_returns_nearest_point():
    p = segment_intersection_point(Vec2(0, 0), Vec2(10, 0), Vec2(4, 0), Vec2(15, 0))
    assert p == Vec2(4.0, 0.0)


def test_point_segment_distance():
    assert point_segment_distance(Vec2(5, 5), Vec2(0, 0), Vec2(10, 0)) == 5.0
    assert point_segment_distance(Vec2(-3, 4), Vec2(0, 0), Vec2(10, 0)) == 5.0
    assert point_segment_distance(Vec2(1, 1), Vec2(2, 2), Vec2(2, 2)) == pytest.approx(
        math.sqrt(2)
    )


# ---------------------------------------------------------------------------
# Bounce
# ---------------------------------------------------------------------------
def test_reflect_heading_is_quarter_turn():
    assert reflect_heading_90(0.0, 1) == pytest.approx(math.pi / 2)
    assert reflect_heading_90(0.0, -1) == pytest.approx(-math.pi / 2)


def test_reflect_heading_stays_canonical():
    h = reflect_heading_90(math.pi - 0.1, 1)
    assert -math.pi <= h <= math.pi


def test_bounding_box_with_margin():
    assert bounding_box(Vec2(1, 5), Vec2(3, 2), margin=1.0) == (0.0, 1.0, 4.0, 6.0)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@given(a=vectors, b=vectors, c=vectors, d=vectors)
def test_intersection_is_symmetric(a, b, c, d):
    assert segments_intersect(a, b, c, d) == segments_intersect(c, d, a, b)


@given(a=vectors, b=vectors)
def test_segment_intersects_itself(a, b):
    assert segments_intersect(a, b, a, b)


@given(a=vectors, b=vectors, p=vectors)
def test_point_distance_nonnegative_and_bounded(a, b, p):
    d = point_segment_distance(p, a, b)
    assert d >= 0.0
    assert d <= p.distance_to(a) + 1e-9


@given(v=vectors, angle=st.floats(min_value=-math.pi, max_value=math.pi))
def test_rotation_preserves_norm(v, angle):
    assert v.rotated(angle).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)


@given(h=st.floats(min_value=-math.pi, max_value=math.pi))
def test_four_bounces_return_to_start(h):
    result = h
    for _ in range(4):
        result = reflect_heading_90(result, 1)
    # Up to 2*pi wrapping, four quarter turns are identity.
    assert math.cos(result) == pytest.approx(math.cos(h), abs=1e-9)
    assert math.sin(result) == pytest.approx(math.sin(h), abs=1e-9)
