"""Tests for the checkpoint (persistence) layer: exact round-trips,
periodic snapshots, and crash recovery via checkpoint + audit replay."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.state.checkpoint import (
    CheckpointPolicy,
    checkpoint_time,
    dump_store,
    load_store,
)
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore


def sample_store():
    return ObjectStore([
        WorldObject("avatar:0", {"x": 1.5, "y": -2.0, "alive": True,
                                 "name": "zoe", "pos": (1.0, 2.0)}),
        WorldObject("fork:1", {"holder": None}),
    ])


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
def test_roundtrip_exact():
    store = sample_store()
    restored = load_store(dump_store(store))
    assert restored.diff(store) == {}
    assert restored.get("avatar:0")["pos"] == (1.0, 2.0)
    assert isinstance(restored.get("avatar:0")["pos"], tuple)


def test_roundtrip_dicts_nested_in_tuples():
    """Regression: a dict nested inside a tuple attribute used to come
    back as the raw JSON object — string keys only, and a dict shaped
    like ``{"__tuple__": [...]}`` was indistinguishable from the tuple
    encoding itself.  The tagged codec round-trips them exactly."""
    store = ObjectStore([
        WorldObject("npc:0", {
            "inv": (("gold", 3), {"keys": (1, 2)}),
            "by_id": ({7: "seven", (1, 2): "pair"},),
            "tricky": ({"__tuple__": [1, 2]},),
        }),
    ])
    restored = load_store(dump_store(store))
    assert restored.diff(store) == {}
    npc = restored.get("npc:0")
    assert npc["inv"] == (("gold", 3), {"keys": (1, 2)})
    assert isinstance(npc["inv"][1]["keys"], tuple)
    assert npc["by_id"] == ({7: "seven", (1, 2): "pair"},)
    assert npc["tricky"] == ({"__tuple__": [1, 2]},)


def test_dump_is_canonical():
    a = sample_store()
    b = sample_store()
    assert dump_store(a) == dump_store(b)


def test_virtual_time_recorded():
    text = dump_store(sample_store(), virtual_time=1234.5)
    assert checkpoint_time(text) == 1234.5


def test_load_rejects_garbage():
    with pytest.raises(ProtocolError):
        load_store("not json at all {")
    with pytest.raises(ProtocolError):
        load_store('{"format": "something-else", "objects": {}}')


def test_nested_tuples_roundtrip():
    store = ObjectStore([WorldObject("o:0", {"t": ((1, 2), (3, (4,)))})])
    restored = load_store(dump_store(store))
    assert restored.get("o:0")["t"] == ((1, 2), (3, (4,)))


attr_values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
    st.tuples(st.integers(min_value=0, max_value=9),
              st.floats(min_value=-10, max_value=10)),
)


@given(
    objects=st.dictionaries(
        st.from_regex(r"[a-z]{1,6}:[0-9]{1,3}", fullmatch=True),
        st.dictionaries(st.text(min_size=1, max_size=8).filter(
            lambda s: "__tuple__" not in s), attr_values, max_size=4),
        max_size=8,
    )
)
def test_roundtrip_property(objects):
    store = ObjectStore(WorldObject(oid, attrs) for oid, attrs in objects.items())
    restored = load_store(dump_store(store))
    assert restored.diff(store) == {}


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------
def test_policy_snapshots_on_interval():
    store = sample_store()
    policy = CheckpointPolicy(store, interval_commits=3, clock=lambda: 42.0)
    for pos in range(7):
        store.merge({"avatar:0": {"x": float(pos)}})
        policy.on_commit(pos, 0, {})
    assert len(policy.checkpoints) == 2  # after commits 3 and 6
    assert policy.covered_upto == 5
    restored = policy.restore_latest()
    assert restored.get("avatar:0")["x"] == 5.0
    assert checkpoint_time(policy.latest) == 42.0


def test_policy_retention_bound():
    store = sample_store()
    policy = CheckpointPolicy(store, interval_commits=1, keep=2)
    for pos in range(5):
        policy.on_commit(pos, 0, {})
    assert len(policy.checkpoints) == 2


def test_policy_requires_checkpoint_before_restore():
    policy = CheckpointPolicy(sample_store(), interval_commits=10)
    assert policy.latest is None
    with pytest.raises(ProtocolError):
        policy.restore_latest()


def test_policy_validates_parameters():
    with pytest.raises(ProtocolError):
        CheckpointPolicy(sample_store(), interval_commits=0)
    with pytest.raises(ProtocolError):
        CheckpointPolicy(sample_store(), keep=0)


# ---------------------------------------------------------------------------
# Crash recovery: checkpoint + audit-log replay == live state
# ---------------------------------------------------------------------------
def test_recovery_from_checkpoint_plus_replay():
    from repro.core.engine import SeveConfig, SeveEngine
    from repro.metrics.audit import AuditLog
    from repro.world.manhattan import ManhattanConfig, ManhattanWorld

    world = ManhattanWorld(
        4,
        ManhattanConfig(width=150.0, height=150.0, num_walls=20,
                        spawn="cluster", spawn_extent=40.0, seed=6),
    )
    engine = SeveEngine(world, 4, SeveConfig(mode="seve", rtt_ms=100.0,
                                             tick_ms=20.0))
    engine.start(stop_at=60_000)

    policy = CheckpointPolicy(engine.state, interval_commits=5,
                              clock=lambda: engine.sim.now)
    # A "WAL": audit records everything since the last checkpoint.
    wal = AuditLog()
    last_covered = {"pos": -1}

    def on_commit(pos, client_id, values):
        wal.record(pos, client_id, engine.sim.now, values)
        policy.on_commit(pos, client_id, values)

    engine.server.on_commit = on_commit

    for cid in range(4):
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": 8}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            ))

        engine.sim.call_every(150.0, submit, start_delay=4.0 + cid,
                              stop_at=1500.0)
    engine.run(until=3000.0)
    engine.run_to_quiescence()

    assert policy.latest is not None
    # Recovery: load the checkpoint, replay WAL records after it.
    recovered = policy.restore_latest()
    for record in wal.records:
        if record.pos > policy.covered_upto:
            recovered.merge(record.values())
    for obj in engine.state.objects():
        assert recovered.get(obj.oid) == obj, obj.oid


@pytest.mark.faults
@pytest.mark.parametrize("sharded", [False, True], ids=["single", "one-shard"])
def test_recovery_under_lossy_transport(sharded):
    """Checkpoint + WAL replay reconstructs the live final state even
    when the run itself fought a lossy, jittery network over the ARQ
    transport — for the classic engine and a one-shard deployment."""
    from repro.core.engine import SeveConfig, SeveEngine
    from repro.core.sharded import ShardedSeveEngine, ShardingConfig
    from repro.metrics.audit import AuditLog
    from repro.net.faults import FaultPlan, ReliabilityConfig, RetryPolicy
    from repro.world.manhattan import ManhattanConfig, ManhattanWorld

    world = ManhattanWorld(
        4,
        ManhattanConfig(width=150.0, height=150.0, num_walls=20,
                        spawn="cluster", spawn_extent=40.0, seed=6),
    )
    config = SeveConfig(
        mode="seve",
        rtt_ms=100.0,
        tick_ms=20.0,
        fault_plan=FaultPlan(loss_rate=0.08, jitter_ms=30.0,
                             duplicate_rate=0.03, seed=4),
        reliability=ReliabilityConfig.for_rtt(100.0),
        retry=RetryPolicy.for_rtt(100.0),
    )
    if sharded:
        engine = ShardedSeveEngine(
            world, 4, config,
            sharding=ShardingConfig(shards=1, world_width=150.0),
        )
    else:
        engine = SeveEngine(world, 4, config)
    engine.start(stop_at=60_000)

    initial = ObjectStore([obj.copy() for obj in engine.state.objects()])
    policy = CheckpointPolicy(engine.state, interval_commits=5,
                              clock=lambda: engine.sim.now)
    wal = AuditLog()

    def on_commit(pos, client_id, values):
        wal.record(pos, client_id, engine.sim.now, values)
        policy.on_commit(pos, client_id, values)

    engine.server.on_commit = on_commit

    for cid in range(4):
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": 8}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            ))

        engine.sim.call_every(150.0, submit, start_delay=4.0 + cid,
                              stop_at=1500.0)
    engine.run(until=3000.0)
    engine.run_to_quiescence()

    # The run really fought the fault plan.
    assert engine.network.meter.messages_dropped > 0
    assert engine.network.meter.retransmissions > 0
    assert len(wal) > 0
    assert policy.latest is not None

    # Full-WAL replay over the initial state equals the live state.
    replayed = wal.replay(initial)
    for obj in engine.state.objects():
        assert replayed.get(obj.oid) == obj, obj.oid

    # Checkpoint restore + post-checkpoint WAL suffix equals it too.
    recovered = policy.restore_latest()
    for record in wal.records:
        if record.pos > policy.covered_upto:
            recovered.merge(record.values())
    for obj in engine.state.objects():
        assert recovered.get(obj.oid) == obj, obj.oid
