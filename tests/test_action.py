"""Unit tests for the action framework (Action, ActionResult, BlindWrite)."""

from __future__ import annotations

import pytest

from repro.core.action import (
    ABORT_RESULT,
    Action,
    ActionId,
    ActionResult,
    BlindWrite,
)
from repro.errors import ActionAborted, ProtocolError
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore
from repro.types import SERVER_ID


class IncrementAction(Action):
    """Test action: counter += amount (reads and writes the counter)."""

    def __init__(self, action_id, oid="counter:0", amount=1, undeclared=False):
        super().__init__(
            action_id,
            reads=frozenset({oid}),
            writes=frozenset({oid}),
            cost_ms=1.0,
        )
        self.oid = oid
        self.amount = amount
        self.undeclared = undeclared

    def compute(self, store):
        if self.undeclared:
            return {"other:0": {"value": 1}}
        value = int(store.get(self.oid)["value"]) + self.amount
        if value > 100:
            raise ActionAborted("overflow")
        return {self.oid: {"value": value}}


@pytest.fixture
def store():
    return ObjectStore([WorldObject("counter:0", {"value": 10})])


def aid(seq=0, client=1):
    return ActionId(client, seq)


class _Configurable(Action):
    """Minimal concrete action for constructor-validation tests."""

    def compute(self, store):
        return {}


def test_rs_must_contain_ws():
    with pytest.raises(ProtocolError):
        _Configurable(aid(), reads=frozenset(), writes=frozenset({"x:0"}))


def test_negative_radius_rejected():
    with pytest.raises(ProtocolError):
        _Configurable(aid(), reads=frozenset({"a"}), writes=frozenset(), radius=-1.0)


def test_negative_cost_rejected():
    with pytest.raises(ProtocolError):
        _Configurable(aid(), reads=frozenset({"a"}), writes=frozenset(), cost_ms=-0.1)


def test_apply_writes_back_and_returns_result(store):
    action = IncrementAction(aid(), amount=5)
    result = action.apply(store)
    assert store.get("counter:0")["value"] == 15
    assert result == ActionResult.of({"counter:0": {"value": 15}})
    assert not result.aborted


def test_apply_is_deterministic_across_replicas(store):
    action = IncrementAction(aid(), amount=3)
    replica = store.snapshot()
    assert action.apply(store) == action.apply(replica)
    assert store.get("counter:0") == replica.get("counter:0")


def test_abort_behaves_as_noop(store):
    store.get("counter:0")["value"] = 100
    action = IncrementAction(aid(), amount=5)
    result = action.apply(store)
    assert result.aborted
    assert result == ABORT_RESULT
    assert store.get("counter:0")["value"] == 100


def test_undeclared_write_raises(store):
    store.put(WorldObject("other:0", {"value": 0}))
    action = IncrementAction(aid(), undeclared=True)
    with pytest.raises(ProtocolError):
        action.apply(store)


def test_result_equality_is_value_based():
    a = ActionResult.of({"x:0": {"v": 1}, "y:0": {"w": 2}})
    b = ActionResult.of({"y:0": {"w": 2}, "x:0": {"v": 1}})
    assert a == b
    assert a != ActionResult.of({"x:0": {"v": 2}, "y:0": {"w": 2}})
    assert a != ABORT_RESULT


def test_result_values_roundtrip():
    values = {"x:0": {"v": 1}}
    result = ActionResult.of(values)
    assert result.values() == values
    assert result.written_ids() == frozenset({"x:0"})


def test_stable_nonce_is_deterministic_and_spread():
    a1 = IncrementAction(ActionId(1, 5))
    a2 = IncrementAction(ActionId(1, 5))
    a3 = IncrementAction(ActionId(1, 6))
    assert a1.stable_nonce() == a2.stable_nonce()
    assert a1.stable_nonce() != a3.stable_nonce()


def test_wire_size_scales_with_sets():
    small = IncrementAction(aid())
    assert small.wire_size() == 48 + 8 * 2 + 16


def test_client_id_property():
    assert IncrementAction(ActionId(7, 0)).client_id == 7


def test_blind_write_installs_absent_objects():
    store = ObjectStore()
    blind = BlindWrite.from_server(0, {"new:0": {"x": 1.0}})
    result = blind.apply(store)
    assert store.get("new:0")["x"] == 1.0
    assert result.written_ids() == frozenset({"new:0"})
    assert blind.client_id == SERVER_ID


def test_blind_write_overwrites_wholesale(store):
    blind = BlindWrite(aid(), {"counter:0": {"value": 99}})
    blind.apply(store)
    assert store.get("counter:0")["value"] == 99


def test_blind_write_values_are_copies():
    blind = BlindWrite.from_server(0, {"a:0": {"x": 1}})
    blind.values()["a:0"]["x"] = 999
    assert blind.values() == {"a:0": {"x": 1}}


def test_blind_write_rs_equals_ws():
    blind = BlindWrite.from_server(0, {"a:0": {"x": 1}, "b:0": {"y": 2}})
    assert blind.reads == blind.writes == frozenset({"a:0", "b:0"})


def test_blind_write_wire_size():
    blind = BlindWrite.from_server(0, {"a:0": {"x": 1, "y": 2}})
    assert blind.wire_size() == 16 + 8 + 24


def test_action_id_repr():
    assert repr(ActionId(3, 14)) == "a[3.14]"
