"""Tests for the schedule-permutation race explorer
(docs/static_analysis.md, ``repro.analysis.races``).

The explorer's value rests on three properties, each pinned here:

1. *Soundness of the identity schedule* — an unbound or rule-less
   perturber adds zero delay, so instrumentation alone cannot change a
   run (byte-identical fingerprints, asserted per scenario by
   ``explore`` itself and re-checked here via ``deterministic``).
2. *The shipped protocol passes every explored schedule* — the
   default scenarios (K=2 elastic epoch churn, K=2 lease failover, and
   the reactive deferred-reply weave) hold their invariants under all
   permutation rules.  This is the CI gate in scripts/test.sh.
3. *A reintroduced PR 9-style gap is caught and shrunk* — seeding the
   historical deferred-push bug (committed-while-parked replies
   silently dropped) flips the explorer to VIOLATIONS with a minimal
   reordering trace, while the identity schedule still passes: exactly
   the class of bug example-based tests missed the first time.
"""

from __future__ import annotations

import json

import pytest

import repro.core.server_incomplete as server_incomplete
from repro.analysis.races import (
    _BIG,
    RULES,
    SchedulePerturber,
    default_scenarios,
    explore,
)


def _scenario(name):
    return {s.name: s for s in default_scenarios()}[name]


# ----------------------------------------------------------------------
# Perturber unit behaviour
# ----------------------------------------------------------------------
def test_identity_perturber_records_but_never_delays():
    perturber = SchedulePerturber(window_ms=5.0, rule=None, scope="all")
    for i in range(6):
        delay = perturber(i, -1, object(), 1.0 + i * 2.0)
        assert delay == 0.0
    assert len(perturber.log) == 6
    # now = 1,3,5,7,9,11 over 5ms windows -> counts {0: 2, 1: 3, 2: 1};
    # window 2 has a lone send, so only 0 and 1 are perturbable.
    assert perturber.perturbable_windows() == [0, 1]


def test_rank_rules_keep_deliveries_inside_the_next_window():
    # Perturbed delivery offsets stay below 1.25 windows, so a send can
    # never leapfrog the *next* window's messages (FIFO links then
    # clamp within-window order to the rank order).
    for rule_name, rule in sorted(RULES.items()):
        perturber = SchedulePerturber(window_ms=5.0, rule=rule, scope="all")
        for i in range(16):
            now = 0.3 * i
            delay = perturber(i % 4, -1, object(), now)
            assert 0.0 <= now % 5.0 + delay < 5.0 * 1.25, rule_name


def test_rank_rules_are_process_stable():
    # by-type hashes with crc32, not hash(): same ranks in every
    # process, a prerequisite for reproducing shrunk traces.
    assert RULES["by-type"](0, 1, 2, "SubmitAction") == \
        RULES["by-type"](0, 9, 9, "SubmitAction")
    assert RULES["reverse"](0, 0, 0, "X") == _BIG - 1
    assert RULES["swap-adjacent"](4, 0, 0, "X") == 5
    assert RULES["swap-adjacent"](5, 0, 0, "X") == 4


# ----------------------------------------------------------------------
# The shipped tree under permuted schedules
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_default_scenarios_pass_all_schedules():
    report = explore()
    assert report.ok, report.summary()
    assert len(report.results) == 3
    for result in report.results:
        assert result.deterministic is True, result.scenario
        assert result.perturbable_windows >= 2, result.scenario
        assert result.schedules >= 5, result.scenario
    # JSON form is schema-stable for the bench harness.
    document = json.loads(json.dumps(report.to_dict()))
    assert set(document) == {
        "window_ms", "total_runs", "total_schedules", "ok", "scenarios",
    }


def test_reactive_scenario_exercises_reply_parking():
    # Guard against the scenario silently going vacuous: the weave must
    # actually park reactive replies behind the in-order guard, and
    # every parked reply must eventually be answered (PR 9 invariant).
    prepared = _scenario("reactive-deferred").build()
    prepared.run()
    assert prepared.check() == []
    stats = prepared.engine.server.stats
    assert stats.replies_parked > 0
    assert stats.replies_parked == stats.replies_answered


# ----------------------------------------------------------------------
# Regression: the explorer catches a reintroduced PR 9 deferred-push gap
# ----------------------------------------------------------------------
def _buggy_retry_deferred_replies(self):
    """The historical bug: committed-while-parked replies are dropped
    on the floor instead of being taught/acknowledged, leaving the
    originator pending forever under the right delivery order."""
    for client_id in list(self._deferred_replies):
        if client_id not in self.clients:
            del self._deferred_replies[client_id]
            continue
        if not self.network.is_registered(client_id):
            continue
        still = []
        for pos in self._deferred_replies[client_id]:
            if pos < self._base_pos:
                continue  # BUG: committed-meanwhile reply vanishes
            entry = self._entries[pos - self._base_pos]
            if entry.valid is False or client_id in entry.sent:
                self.stats.replies_answered += 1
                continue
            batch_entries, _ = self._closure_entries(client_id, entry)
            if batch_entries is None:
                still.append(pos)
            else:
                self._send_batch(client_id, batch_entries)
                self.stats.replies_answered += 1
        if still:
            self._deferred_replies[client_id] = still
        else:
            del self._deferred_replies[client_id]


@pytest.mark.slow
def test_seeded_deferred_reply_gap_is_caught_and_shrunk(monkeypatch):
    monkeypatch.setattr(
        server_incomplete.IncompleteWorldServer,
        "_retry_deferred_replies",
        _buggy_retry_deferred_replies,
    )
    report = explore([_scenario("reactive-deferred")])
    assert not report.ok, "seeded PR 9 gap must be caught"
    (result,) = report.results
    # The identity schedule still passes -- only a permuted delivery
    # order exposes the gap, which is the whole point of the explorer.
    assert result.deterministic is True
    assert result.violations
    violation = result.violations[0]
    assert violation.rule in RULES
    assert violation.windows is not None and len(violation.windows) >= 1
    assert any(
        "quiescence" in p or "deferred" in p for p in violation.problems
    )
    # The shrunk trace shows a concrete reordering, not just a verdict.
    assert violation.trace
    for entry in violation.trace:
        assert set(entry) == {"window", "sent", "delivered"}
        assert sorted(entry["sent"]) == sorted(entry["delivered"])
    assert any(
        entry["sent"] != entry["delivered"] for entry in violation.trace
    )
