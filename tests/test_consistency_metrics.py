"""Unit tests for the consistency checker and divergence metrics."""

from __future__ import annotations

from repro.metrics.consistency import (
    ConsistencyChecker,
    check_uniform,
    pairwise_divergence,
)
from repro.state.objects import WorldObject
from repro.state.store import ObjectStore
from repro.state.versioned import VersionedStore


def server_with_history():
    state = VersionedStore([WorldObject("o:0", {"v": 0})])
    state.merge({"o:0": {"v": 1}}, commit_index=0)
    state.merge({"o:0": {"v": 2}}, commit_index=1)
    return state


def replica(value):
    return ObjectStore([WorldObject("o:0", {"v": value})])


def test_exact_match_is_consistent():
    checker = ConsistencyChecker(server_with_history())
    report = checker.check_replica(0, replica(2))
    assert report.consistent
    assert report.exact_matches == 1
    assert report.stale_but_consistent == 0


def test_stale_committed_value_is_consistent():
    checker = ConsistencyChecker(server_with_history())
    report = checker.check_replica(0, replica(1))
    assert report.consistent
    assert report.stale_but_consistent == 1


def test_uncommitted_value_is_violation():
    checker = ConsistencyChecker(server_with_history())
    report = checker.check_replica(3, replica(99))
    assert not report.consistent
    assert report.violation_count == 1
    violation = report.violations[0]
    assert violation.client_id == 3
    assert violation.oid == "o:0"
    assert violation.held == {"v": 99}


def test_unknown_object_is_violation():
    checker = ConsistencyChecker(server_with_history())
    ghost = ObjectStore([WorldObject("ghost:0", {"v": 1})])
    report = checker.check_replica(0, ghost)
    assert not report.consistent


def test_check_all_aggregates():
    checker = ConsistencyChecker(server_with_history())
    report = checker.check_all({0: replica(2), 1: replica(1), 2: replica(7)})
    assert report.objects_checked == 3
    assert report.exact_matches == 1
    assert report.stale_but_consistent == 1
    assert report.violation_count == 1
    assert "3 object replicas" in report.summary()


def test_check_uniform_passes_identical_replicas():
    report = check_uniform({0: replica(5), 1: replica(5)})
    assert report.consistent
    assert report.objects_checked == 2


def test_check_uniform_flags_disagreement():
    report = check_uniform({0: replica(5), 1: replica(6)})
    assert not report.consistent
    assert report.violations[0].client_id == 1


def test_check_uniform_partial_overlap_ok():
    a = ObjectStore([WorldObject("o:0", {"v": 1}), WorldObject("o:1", {"v": 2})])
    b = ObjectStore([WorldObject("o:1", {"v": 2})])
    report = check_uniform({0: a, 1: b})
    assert report.consistent


def test_pairwise_divergence():
    divergent = pairwise_divergence({0: replica(1), 1: replica(2), 2: replica(1)})
    assert (0, 1, "o:0") in divergent
    assert (1, 2, "o:0") in divergent
    assert (0, 2, "o:0") not in divergent


def test_pairwise_divergence_ignores_disjoint_objects():
    a = ObjectStore([WorldObject("o:0", {"v": 1})])
    b = ObjectStore([WorldObject("o:1", {"v": 9})])
    assert pairwise_divergence({0: a, 1: b}) == []
