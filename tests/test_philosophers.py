"""Unit + integration tests for the Dining Philosophers world
(Section III-E): unbounded closures and Information Bound chain-breaking."""

from __future__ import annotations

import pytest

from repro.core.action import ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.errors import ConfigurationError
from repro.state.store import ObjectStore
from repro.world.philosophers import (
    FORK_FREE,
    GrabForksAction,
    PhilosophersConfig,
    PhilosophersWorld,
    fork_id,
    philosopher_id,
)


@pytest.fixture
def world():
    return PhilosophersWorld(5, PhilosophersConfig(spacing=10.0))


@pytest.fixture
def store(world):
    return ObjectStore(world.initial_objects())


def test_world_layout(world):
    assert world.num_philosophers == 5
    objects = list(world.initial_objects())
    assert len(objects) == 10  # philosophers + forks
    assert world.avatar_of(0) == philosopher_id(0)
    assert world.avatar_of(9) is None
    assert world.max_speed == 0.0


def test_ring_geometry(world):
    # Adjacent seats are ~spacing apart; opposite seats much farther.
    near = world.seat_position(0).distance_to(world.seat_position(1))
    far = world.seat_position(0).distance_to(world.seat_position(2))
    # Chord length is slightly below the arc spacing (2R sin(pi/n)).
    assert near == pytest.approx(10.0, rel=0.1)
    assert near < 10.0
    assert far > near


def test_needs_at_least_two():
    with pytest.raises(ConfigurationError):
        PhilosophersWorld(1)


def test_grab_succeeds_when_forks_free(world, store):
    grab = world.plan_grab(0, ActionId(0, 0))
    grab.apply(store)
    assert store.get(fork_id(0))["holder"] == 0
    assert store.get(fork_id(1))["holder"] == 0
    me = store.get(philosopher_id(0))
    assert me["state"] == "eating"
    assert me["meals"] == 1


def test_grab_fails_benignly_when_fork_taken(world, store):
    world.plan_grab(0, ActionId(0, 0)).apply(store)
    result = world.plan_grab(1, ActionId(1, 0)).apply(store)  # shares fork 1
    assert not result.aborted
    assert store.get(philosopher_id(1))["state"] == "hungry"
    assert store.get(philosopher_id(1))["meals"] == 0
    assert store.get(fork_id(1))["holder"] == 0  # unchanged


def test_release_frees_only_own_forks(world, store):
    world.plan_grab(0, ActionId(0, 0)).apply(store)
    world.plan_release(0, ActionId(0, 1)).apply(store)
    assert store.get(fork_id(0))["holder"] == FORK_FREE
    assert store.get(fork_id(1))["holder"] == FORK_FREE
    assert store.get(philosopher_id(0))["state"] == "thinking"


def test_release_does_not_steal(world, store):
    world.plan_grab(0, ActionId(0, 0)).apply(store)
    world.plan_release(1, ActionId(1, 0)).apply(store)  # never held fork 1
    assert store.get(fork_id(1))["holder"] == 0


def test_grab_sets_are_adjacent_forks(world):
    grab = world.plan_grab(2, ActionId(2, 0))
    assert grab.reads == frozenset(
        {philosopher_id(2), fork_id(2), fork_id(3)}
    )
    assert grab.reads == grab.writes


def test_ring_wraps_at_last_philosopher(world):
    grab = world.plan_grab(4, ActionId(4, 0))
    assert fork_id(0) in grab.writes  # wraps to fork 0


def test_adjacent_grabs_conflict_distant_do_not(world):
    from repro.core.rwsets import conflicts

    g0 = world.plan_grab(0, ActionId(0, 0))
    g1 = world.plan_grab(1, ActionId(1, 0))
    g2 = world.plan_grab(2, ActionId(2, 0))
    assert conflicts(g0, g1)
    assert not conflicts(g0, g2)


def test_simultaneous_grabs_closure_spans_ring(world):
    """Section III-E's point: pairwise conflicts, world-spanning closure."""
    from repro.core.rwsets import backward_chain

    grabs = [world.plan_grab(i, ActionId(i, 0)) for i in range(5)]
    chain, _ = backward_chain(grabs[:-1], grabs[-1].reads)
    # The last grab transitively conflicts with every earlier one.
    assert chain == [0, 1, 2, 3]


def run_simultaneous_round(num=12, threshold=None, spacing=10.0):
    """All philosophers grab in the same instant under full SEVE."""
    world = PhilosophersWorld(num, PhilosophersConfig(spacing=spacing))
    config = SeveConfig(
        mode="seve",
        rtt_ms=100.0,
        tick_ms=20.0,
        threshold=threshold if threshold is not None else 1.5 * spacing,
    )
    engine = SeveEngine(world, num, config)
    engine.start(stop_at=10_000)
    for cid in range(num):
        client = engine.client(cid)
        client.submit(world.plan_grab(cid, client.next_action_id(), cost_ms=0.5))
    engine.run(until=5_000)
    engine.run_to_quiescence()
    return world, engine


def test_info_bound_breaks_the_ring_with_few_drops():
    world, engine = run_simultaneous_round(num=12)
    # Some grabs must be dropped to cut the ring ...
    assert engine.total_dropped >= 1
    # ... but the majority commits (the paper: dropping all simultaneous
    # requests would be suboptimal).
    assert engine.total_dropped <= 6
    committed = engine.server.stats.actions_committed
    assert committed == 12 - engine.total_dropped


def test_committed_grabs_respect_mutual_exclusion():
    world, engine = run_simultaneous_round(num=10)
    # No fork may end up claimed by two philosophers: recompute holders
    # from the authoritative state.
    state = engine.state
    holders = {}
    for i in range(10):
        holder = int(state.get(fork_id(i))["holder"])
        if holder != FORK_FREE:
            holders.setdefault(holder, []).append(i)
    for philosopher, forks in holders.items():
        assert len(forks) == 2  # eats with exactly two forks
    eaters = [
        i
        for i in range(10)
        if state.get(philosopher_id(i))["state"] == "eating"
    ]
    assert set(holders) == set(eaters)


def test_huge_threshold_never_drops():
    world, engine = run_simultaneous_round(num=8, threshold=10_000.0)
    assert engine.total_dropped == 0
    assert engine.server.stats.actions_committed == 8
