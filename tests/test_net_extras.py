"""Additional network/host coverage: server-side bandwidth caps,
bandwidth-driven congestion collapse, and link backlog accounting."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.types import SERVER_ID


def test_server_bandwidth_caps_downlink(sim):
    fast_net = Network(sim, rtt_ms=0.0, bandwidth_bps=None)
    fast_net.register(SERVER_ID, lambda src, msg: None)
    arrivals = []
    fast_net.register(0, lambda src, msg: arrivals.append(sim.now))
    fast_net.send(SERVER_ID, 0, "a", 1000)
    sim.run()
    assert arrivals == [0.0]

    slow_sim = Simulator()
    slow_net = Network(
        slow_sim, rtt_ms=0.0, bandwidth_bps=None, server_bandwidth_bps=100_000
    )
    slow_net.register(SERVER_ID, lambda src, msg: None)
    slow_arrivals = []
    slow_net.register(0, lambda src, msg: slow_arrivals.append(slow_sim.now))
    slow_net.send(SERVER_ID, 0, "a", 1000)
    slow_sim.run()
    assert slow_arrivals == [pytest.approx(80.0)]  # 8000 bits / 100 kbps


def test_sustained_overload_grows_link_backlog(sim):
    net = Network(sim, rtt_ms=10.0, bandwidth_bps=100_000)
    net.register(SERVER_ID, lambda src, msg: None)
    net.register(0, lambda src, msg: None)
    # Offer 2x the uplink capacity: 2500 B every 100ms = 200 kbps.
    for i in range(20):
        sim.schedule(i * 100.0, lambda: net.send(0, SERVER_ID, "x", 2500))
    sim.run(until=1999.0)
    # Backlog at the end of the burst: about half the bytes still queue.
    assert net.link(0, SERVER_ID).queue_delay() > 500.0


def test_uplink_and_downlink_are_independent_directions(sim):
    net = Network(sim, rtt_ms=0.0, bandwidth_bps=100_000)
    net.register(SERVER_ID, lambda src, msg: None)
    arrivals = []
    net.register(0, lambda src, msg: arrivals.append((msg, sim.now)))
    # Saturate the uplink; the downlink must be unaffected.
    net.send(0, SERVER_ID, "up", 12_500)  # 1 full second of uplink
    net.send(SERVER_ID, 0, "down", 1000)
    sim.run()
    assert ("down", pytest.approx(80.0)) in arrivals


def test_versioned_store_merge_absent_object_records_version():
    from repro.state.versioned import VersionedStore

    store = VersionedStore()
    store.merge({"new:0": {"x": 1.0}}, commit_index=7)
    assert store.version("new:0") == 1
    version, commit, attrs = store.history("new:0")[0]
    assert commit == 7
    assert attrs == {"x": 1.0}


def test_versioned_store_install_after_merge_tracks_versions():
    from repro.state.versioned import VersionedStore
    from repro.state.objects import WorldObject

    store = VersionedStore([WorldObject("o:0", {"a": 1, "b": 2})])
    store.merge({"o:0": {"a": 10}})
    store.install({"o:0": {"a": 20}})  # wholesale replace drops b
    assert store.version("o:0") == 3
    assert "b" not in store.get("o:0")
    history = store.history("o:0")
    assert [entry[0] for entry in history] == [1, 2, 3]
