"""Differential proof of the determinism invariant: the indexed
(output-sensitive) distribution path must be observationally equivalent
to the brute-force scans it replaces.

A randomized First-Bound workload (32 clients, a few hundred moves) is
run twice — spatial client index + inverted write index ON, then OFF —
and everything a client or experimenter could observe is compared:
every server->client batch (destination, virtual send time, entry
positions, blind-write contents, wire size), the full
``IncompleteServerStats``, per-client protocol stats, and the final
authoritative :class:`VersionedStore` contents.  The indexes may only
change *wall-clock* time, never *virtual-time* outcomes
(docs/performance.md).
"""

from __future__ import annotations

import pytest

from repro.core.action import BlindWrite
from repro.core.engine import SeveConfig, SeveEngine
from repro.core.messages import ActionBatch, GroupBundle
from repro.harness.config import SimulationSettings
from repro.harness.workload import MoveWorkload
from repro.types import SERVER_ID
from repro.world.manhattan import ManhattanWorld

DIFF_SETTINGS = SimulationSettings(
    num_clients=32,
    num_walls=300,
    moves_per_client=10,
    world_width=400.0,
    world_height=400.0,
    spawn="cluster",
    spawn_extent=140.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=200.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=13,
)


def _entry_fingerprint(ordered):
    """Stable identity of one wire entry, blind-write payload included."""
    action = ordered.action
    if isinstance(action, BlindWrite):
        values = action.compute(None)
        payload = tuple(
            (oid, tuple(sorted(attrs.items()))) for oid, attrs in sorted(values.items())
        )
        return ("blind", ordered.pos, action.action_id, payload)
    return ("action", ordered.pos, action.action_id)


def _run_workload(mode: str, *, indexed: bool, settings=DIFF_SETTINGS):
    world = ManhattanWorld(settings.num_clients, settings.manhattan_config())
    config = SeveConfig(
        mode=mode,
        rtt_ms=settings.rtt_ms,
        bandwidth_bps=settings.bandwidth_bps,
        omega=settings.omega,
        tick_ms=settings.tick_ms,
        threshold=settings.effective_threshold,
        eval_overhead_ms=settings.eval_overhead_ms,
        use_distribution_indexes=indexed,
    )
    engine = SeveEngine(world, settings.num_clients, config)

    sends = []
    real_send = engine.network.send

    def logging_send(src, dst, payload, size_bytes):
        if src == SERVER_ID and isinstance(payload, ActionBatch):
            sends.append(
                (
                    engine.sim.now,
                    dst,
                    tuple(_entry_fingerprint(entry) for entry in payload.entries),
                    payload.last_installed,
                    size_bytes,
                )
            )
        elif src == SERVER_ID and isinstance(payload, GroupBundle):
            sends.append(
                (
                    engine.sim.now,
                    dst,
                    tuple(_entry_fingerprint(entry) for entry in payload.shared),
                    tuple(
                        (member, tuple(item if isinstance(item, int) else _entry_fingerprint(item) for item in items))
                        for member, items in payload.members
                    ),
                    payload.last_installed,
                    size_bytes,
                )
            )
        return real_send(src, dst, payload, size_bytes)

    engine.network.send = logging_send

    workload = MoveWorkload(engine, world, settings)
    engine.start(stop_at=settings.workload_duration_ms + 2_000.0)
    workload.install()
    engine.run(until=settings.workload_duration_ms + 2_000.0)
    engine.run_to_quiescence()

    final_state = {
        oid: tuple(sorted(engine.state.get(oid).as_dict().items()))
        for oid in engine.state.ids()
    }
    client_stats = {
        client_id: client.stats for client_id, client in engine.clients.items()
    }
    return {
        "server_stats": engine.server.stats,
        "sends": sends,
        "final_state": final_state,
        "client_stats": client_stats,
        "sim_end": engine.sim.now,
        "moves": workload.stats.moves_submitted,
    }


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["first-bound", "seve"])
def test_indexed_and_brute_distribution_are_observationally_identical(mode):
    indexed = _run_workload(mode, indexed=True)
    brute = _run_workload(mode, indexed=False)

    assert indexed["moves"] == brute["moves"] > 200  # "a few hundred actions"
    assert indexed["server_stats"] == brute["server_stats"]
    assert indexed["sends"] == brute["sends"]
    assert indexed["final_state"] == brute["final_state"]
    assert indexed["client_stats"] == brute["client_stats"]
    assert indexed["sim_end"] == brute["sim_end"]
    # The workload actually distributed something (guards against a
    # vacuous pass where the push path never ran).
    assert indexed["server_stats"].entries_distributed > 0
    assert indexed["server_stats"].push_cycles > 0


@pytest.mark.slow
def test_indexed_reactive_replies_match_brute_force():
    """The inverted write index also drives Algorithm 6 in the reactive
    Incomplete World mode (no pushes) — closure replies must be
    identical too."""
    settings = DIFF_SETTINGS.with_(num_clients=16, moves_per_client=8)
    indexed = _run_workload("incomplete", indexed=True, settings=settings)
    brute = _run_workload("incomplete", indexed=False, settings=settings)
    assert indexed["server_stats"] == brute["server_stats"]
    assert indexed["sends"] == brute["sends"]
    assert indexed["final_state"] == brute["final_state"]
    assert indexed["server_stats"].closures_computed > 0
