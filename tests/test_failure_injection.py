"""Failure injection: clients dying mid-run must never corrupt the
survivors' view of the world, in any architecture.

The paper's fault-tolerance note (Section III-C): with completion
messages from every evaluating client, "the only case in which the
server does not receive a response to some action is when all clients
that evaluate that action have failed", and then "it is acceptable to
assume that the action was never submitted".
"""

from __future__ import annotations

import pytest

from repro.core.action import ActionId
from repro.core.engine import SeveConfig, SeveEngine
from repro.harness.architectures import build_engine, build_world
from repro.harness.config import SimulationSettings
from repro.harness.workload import MoveWorkload
from repro.metrics.consistency import ConsistencyChecker
from repro.net.faults import CrashWindow, FaultPlan
from repro.types import SERVER_ID
from repro.world.manhattan import ManhattanConfig, ManhattanWorld


SETTINGS = SimulationSettings(
    num_clients=6,
    num_walls=80,
    moves_per_client=10,
    world_width=200.0,
    world_height=200.0,
    spawn_extent=50.0,
    seed=23,
)


def run_with_casualty(architecture: str, kill_at: float = 800.0):
    """Run the workload, killing client 0 mid-run."""
    world = build_world(SETTINGS)
    engine = build_engine(architecture, SETTINGS, world)
    workload = MoveWorkload(engine, world, SETTINGS)
    engine.start()
    workload.install()

    def kill() -> None:
        workload.stop_client(0)
        engine.network.unregister(0)

    engine.sim.schedule(kill_at, kill)
    engine.run(until=SETTINGS.workload_duration_ms + 1000)
    engine.run_to_quiescence(max_extra_ms=30_000)
    return engine


@pytest.mark.parametrize(
    "architecture",
    ["central", "broadcast", "ring", "seve", "incomplete", "locking",
     "timestamp", "zoned"],
)
def test_client_death_does_not_crash_any_architecture(architecture):
    engine = run_with_casualty(architecture)
    # Survivors kept confirming actions after the death.
    survivors = [cid for cid in engine.clients if cid != 0]
    responses = engine.response_times
    assert sum(
        responses.client_summary(cid).count for cid in survivors
    ) > 0


def test_seve_survivor_replicas_stay_uncorrupted():
    """With fault-tolerant completions (the paper's §III-C remedy), a
    casualty's in-flight actions still commit via the survivors'
    reports, so nothing is left dangling."""
    global SETTINGS
    settings = SETTINGS.with_(fault_tolerant=True)
    world = build_world(settings)
    engine = build_engine("seve", settings, world)
    workload = MoveWorkload(engine, world, settings)
    engine.start()
    workload.install()

    def kill() -> None:
        workload.stop_client(0)
        engine.network.unregister(0)

    engine.sim.schedule(800.0, kill)
    engine.run(until=settings.workload_duration_ms + 1000)
    engine.run_to_quiescence(max_extra_ms=30_000)
    checker = ConsistencyChecker(engine.state)
    replicas = {
        cid: client.stable
        for cid, client in engine.clients.items()
        if cid != 0
    }
    report = checker.check_all(replicas)
    assert report.consistent, report.violations[:3]


def test_seve_fault_tolerant_mode_commits_orphans():
    """With report_all_completions, an action outlives its originator."""
    world = ManhattanWorld(
        4,
        ManhattanConfig(width=150.0, height=150.0, num_walls=20,
                        spawn="cluster", spawn_extent=20.0, seed=3),
    )
    engine = SeveEngine(
        world, 4,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0,
                   fault_tolerant=True, seed_full_state=True),
    )
    engine.start(stop_at=60_000)
    victim = engine.client(0)
    # The victim acts once, then dies before its own echo returns.
    victim.submit(world.plan_move(victim.optimistic, 0, victim.next_action_id(),
                                  cost_ms=1.0))
    engine.sim.schedule(60.0, lambda: engine.network.unregister(0))
    # Survivors keep acting so pushes and completions flow.
    for cid in (1, 2, 3):
        client = engine.client(cid)

        def submit(cid=cid, client=client, n={"left": 5}):
            if n["left"] <= 0:
                return
            n["left"] -= 1
            client.submit(world.plan_move(
                client.optimistic, cid, client.next_action_id(), cost_ms=1.0
            ))

        engine.sim.call_every(200.0, submit, start_delay=20.0 + cid,
                              stop_at=1400.0)
    engine.run(until=3000.0)
    engine.run_to_quiescence(max_extra_ms=10_000)
    # The dead client's action was evaluated (and completion-reported) by
    # a survivor within range, so it committed.
    committed_by_victim = [
        record for record in engine.server.known._known  # noqa: SLF001
    ] if False else None
    assert engine.server.stats.actions_committed >= 1
    # And no survivor's replica was corrupted by the orphan commit.
    checker = ConsistencyChecker(engine.state)
    report = checker.check_all(
        {cid: c.stable for cid, c in engine.clients.items() if cid != 0}
    )
    assert report.consistent


ALL_ARCHITECTURES = [
    "central", "broadcast", "ring", "seve", "incomplete", "locking",
    "timestamp", "zoned",
]


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_midflight_crash_cancels_inflight_deliveries(architecture):
    """Killing a client via Network.crash while messages are in flight
    both directions must cancel the deliveries to the corpse — counted
    as undelivered, never raised, never handed to a dead handler."""
    world = build_world(SETTINGS)
    engine = build_engine(architecture, SETTINGS, world)
    workload = MoveWorkload(engine, world, SETTINGS)
    engine.start()
    workload.install()

    def kill() -> None:
        # Put a delivery genuinely in flight toward the victim at the
        # instant of death (servers now stop *initiating* sends to a
        # parked client, so protocol traffic alone cannot be relied on
        # to be mid-wire at an arbitrary kill time).
        engine.network.send(SERVER_ID, 0, "probe", 8)
        workload.stop_client(0)
        engine.network.crash(0)
        engine.mark_dead(0)

    # 800ms is mid-interval: client 0 has submissions in flight up and
    # replies in flight down when it dies.
    engine.sim.schedule(800.0, kill)
    engine.run(until=SETTINGS.workload_duration_ms + 1000)
    engine.run_to_quiescence(max_extra_ms=30_000)
    assert engine.network.meter.messages_undelivered > 0
    survivors = [cid for cid in engine.clients if cid != 0]
    assert sum(
        engine.response_times.client_summary(cid).count for cid in survivors
    ) > 0


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_midflight_crash_with_reconnect(architecture):
    """A crashed client that reconnects resumes receiving traffic (the
    parked handler is revived in place), with the full fault machinery
    — ARQ, retries, liveness — active."""
    plan = FaultPlan(
        seed=5, crashes=(CrashWindow(0, 800.0, reconnect_at_ms=2_400.0),)
    )
    settings = SETTINGS.with_(fault_plan=plan)
    world = build_world(settings)
    engine = build_engine(architecture, settings, world)
    workload = MoveWorkload(engine, world, settings)
    horizon = settings.workload_duration_ms + 1000
    engine.start(stop_at=horizon + 15_000.0)
    workload.install()
    delivered_at_revival = {}

    def kill() -> None:
        workload.stop_client(0)
        engine.network.crash(0)
        engine.mark_dead(0)

    def revive() -> None:
        delivered_at_revival["n"] = engine.network.link(SERVER_ID, 0).delivered
        engine.network.reconnect(0)
        engine.mark_alive(0)
        workload.resume_client(0)

    engine.sim.schedule(800.0, kill)
    engine.sim.schedule(2_400.0, revive)
    engine.run(until=horizon)
    engine.run_to_quiescence(max_extra_ms=60_000)
    # The revived client received fresh deliveries after the reconnect.
    assert (
        engine.network.link(SERVER_ID, 0).delivered
        > delivered_at_revival["n"]
    )
    survivors = [cid for cid in engine.clients if cid != 0]
    assert sum(
        engine.response_times.client_summary(cid).count for cid in survivors
    ) > 0


def test_seve_without_fault_tolerance_stalls_gracefully():
    """Without fault tolerance, an orphaned action stalls the commit
    frontier — later actions stay uncommitted but nothing corrupts."""
    world = ManhattanWorld(
        3,
        ManhattanConfig(width=150.0, height=150.0, num_walls=0,
                        spawn="cluster", spawn_extent=20.0, seed=3),
    )
    engine = SeveEngine(
        world, 3,
        SeveConfig(mode="seve", rtt_ms=100.0, tick_ms=20.0),
    )
    engine.start(stop_at=30_000)
    victim = engine.client(0)
    victim.submit(world.plan_move(victim.optimistic, 0, victim.next_action_id(),
                                  cost_ms=1.0))
    engine.sim.schedule(10.0, lambda: engine.network.unregister(0))
    other = engine.client(1)
    engine.sim.schedule(
        400.0,
        lambda: other.submit(world.plan_move(
            other.optimistic, 1, other.next_action_id(), cost_ms=1.0
        )),
    )
    engine.run(until=3000.0)
    # The orphan never completes: frontier stuck before it.
    assert engine.server.commit_frontier == -1
    assert engine.server.uncommitted_count >= 1
    # Survivors may have *applied* the orphan and everything serialized
    # after it (the stream arrived before the death was known), so they
    # run AHEAD of ζ_S — the precise gap §III-C's fault-tolerant
    # completions close.  Ahead is not corrupted: replaying the
    # serialized-but-uncommitted queue over the initial state must
    # reproduce exactly what the survivor holds.
    from repro.state.store import ObjectStore
    from repro.world.avatar import avatar_id

    replay = ObjectStore(world.initial_objects())
    for entry in engine.server._entries:  # noqa: SLF001 - test introspection
        if entry.valid is not False:
            entry.action.apply(replay)
    survivor = engine.client(1).stable
    assert survivor.get(avatar_id(1)) == replay.get(avatar_id(1))
