"""Differential proof of the adversary determinism contract: a *null*
:class:`AdversaryPlan` (no assignments) must be byte-identical to
running with no plan at all — same messages, same virtual timestamps,
same stats, same final state.  Arming the adversary subsystem may never
perturb an honest run (docs/adversary.md), clean or degraded.
"""

from __future__ import annotations

import pytest

from repro.adversary import AdversaryPlan
from repro.core.messages import ActionBatch
from repro.harness.architectures import build_engine, build_world
from repro.harness.config import SimulationSettings
from repro.harness.runner import run_simulation
from repro.harness.workload import MoveWorkload
from repro.net.faults import FaultPlan
from repro.types import SERVER_ID

BASE = SimulationSettings(
    num_clients=12,
    num_walls=150,
    moves_per_client=8,
    world_width=300.0,
    world_height=300.0,
    spawn_extent=80.0,
    rtt_ms=150.0,
    move_interval_ms=200.0,
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=13,
)

#: A plan that corrupts nobody: must be indistinguishable from None.
NULL_PLAN = AdversaryPlan(seed=99)

#: Degraded-network plan for the lossy variant of the proof: the
#: adversary layer must stay inert under retries and jitter too.
LOSSY = FaultPlan(loss_rate=0.05, jitter_ms=30.0, duplicate_rate=0.02, seed=8)

ARCHITECTURES = ["seve", "seve-basic", "incomplete"]


def _observables(result):
    """Everything a RunResult exposes that an honest run determines."""
    summary = result.response
    return (
        result.moves_submitted,
        result.responses_observed,
        (summary.count, summary.mean, summary.p95, summary.maximum),
        result.total_traffic_kb,
        result.client_traffic_kb,
        result.server_traffic_kb,
        result.virtual_ms,
        result.events,
        result.total_cpu_ms,
        result.messages_dropped,
        result.messages_duplicated,
        result.retransmissions,
        result.clients_evicted,
        None if result.consistency is None else result.consistency.consistent,
    )


@pytest.mark.slow
@pytest.mark.parametrize("architecture", ARCHITECTURES)
@pytest.mark.parametrize("fault_plan", [None, LOSSY], ids=["clean", "lossy"])
def test_null_plan_is_byte_identical_to_no_plan(architecture, fault_plan):
    world = build_world(BASE)
    base = BASE.with_(fault_plan=fault_plan)
    absent = run_simulation(architecture, base, world=world)
    null = run_simulation(
        architecture, base.with_(adversary=NULL_PLAN), world=world
    )
    assert _observables(null) == _observables(absent)
    # The detection layer was never armed: RunResult keeps its
    # detector-free defaults on both sides.
    for result in (absent, null):
        assert result.detector_counts is None
        assert result.detection_records == ()
        assert result.clients_quarantined == ()


@pytest.mark.slow
def test_null_plan_message_stream_identical_for_seve():
    """Beyond aggregates: every server batch (destination, virtual send
    time, wire size) must match message-for-message."""

    def run(settings):
        world = build_world(settings)
        engine = build_engine("seve", settings, world)
        assert engine.detector is None  # null plan arms nothing
        sends = []
        real_send = engine.network.send

        def logging_send(src, dst, payload, size_bytes, **kwargs):
            if src == SERVER_ID and isinstance(payload, ActionBatch):
                sends.append(
                    (
                        engine.sim.now,
                        dst,
                        tuple(e.pos for e in payload.entries),
                        payload.last_installed,
                        size_bytes,
                    )
                )
            return real_send(src, dst, payload, size_bytes, **kwargs)

        engine.network.send = logging_send
        workload = MoveWorkload(engine, world, settings)
        engine.start()
        workload.install()
        engine.run(until=settings.workload_duration_ms + 2_000.0)
        engine.run_to_quiescence()
        final_state = {
            oid: tuple(sorted(engine.state.get(oid).as_dict().items()))
            for oid in engine.state.ids()
        }
        return sends, final_state, engine.sim.now

    absent = run(BASE)
    null = run(BASE.with_(adversary=NULL_PLAN))
    assert null == absent
    assert len(absent[0]) > 50  # the comparison is not vacuous
