"""Differential proof of the observability determinism contract: a run
with a full :class:`repro.obs.Observer` attached (metrics + trace +
profile) must be byte-identical, in every deterministic output, to the
same run unobserved (docs/observability.md).

Everything an experimenter reads off a run is compared: every
deterministic :class:`RunResult` field and the rendered measurement
report (as bytes).  The lossy variant repeats the comparison under
fault injection, where a stray RNG draw or scheduled event inside the
observer would shift every subsequent random number and show up
immediately.
"""

from __future__ import annotations

import pytest

from repro.harness.config import SimulationSettings
from repro.harness.runner import RunResult, run_simulation
from repro.metrics.report import Table
from repro.net.faults import FaultPlan
from repro.obs import Observer

SETTINGS = SimulationSettings(
    num_clients=10,
    num_walls=200,
    moves_per_client=8,
    world_width=300.0,
    world_height=300.0,
    spawn="cluster",
    spawn_extent=100.0,
    rtt_ms=150.0,
    bandwidth_bps=None,
    move_interval_ms=250.0,
    cost_model="fixed",
    move_cost_ms=1.0,
    eval_overhead_ms=0.1,
    seed=11,
)

LOSSY_SETTINGS = SETTINGS.with_(
    fault_plan=FaultPlan(
        loss_rate=0.08, jitter_ms=30.0, duplicate_rate=0.03, seed=5
    )
)


def _fingerprint(result: RunResult) -> dict:
    """Every deterministic (virtual-time) field of a RunResult."""
    return {
        "response": result.response,
        "total_traffic_kb": result.total_traffic_kb,
        "client_traffic_kb": result.client_traffic_kb,
        "server_traffic_kb": result.server_traffic_kb,
        "drop_percent": result.drop_percent,
        "avg_visible": result.avg_visible,
        "avg_move_cost_ms": result.avg_move_cost_ms,
        "virtual_ms": result.virtual_ms,
        "events": result.events,
        "moves_submitted": result.moves_submitted,
        "responses_observed": result.responses_observed,
        "total_cpu_ms": result.total_cpu_ms,
        "closure_cpu_ms": result.closure_cpu_ms,
        "messages_dropped": result.messages_dropped,
        "messages_duplicated": result.messages_duplicated,
        "retransmissions": result.retransmissions,
        "clients_evicted": result.clients_evicted,
        "consistent": (
            None if result.consistency is None else result.consistency.summary()
        ),
    }


def _report_bytes(result: RunResult) -> bytes:
    """The measurement report rendered to bytes (wall time excluded —
    it is the one legitimately nondeterministic field)."""
    table = Table(f"report — {result.architecture}", ("metric", "value"))
    for name, value in _fingerprint(result).items():
        table.add_row(name, value)
    return table.render().encode()


def _run_pair(architecture: str, settings: SimulationSettings):
    unobserved = run_simulation(architecture, settings)
    observer = Observer(trace=True, profile=True)
    observed = run_simulation(architecture, settings, obs=observer)
    return unobserved, observed, observer


@pytest.mark.parametrize("architecture", ["seve", "central", "seve-hybrid"])
def test_observed_run_is_byte_identical_to_unobserved(architecture):
    unobserved, observed, observer = _run_pair(architecture, SETTINGS)
    assert _fingerprint(unobserved) == _fingerprint(observed)
    assert _report_bytes(unobserved) == _report_bytes(observed)
    # Not vacuous: the observer really saw the run.
    assert observer.metrics.counter("sim.dispatched").value == observed.events
    assert len(observer.trace) > 0
    assert unobserved.moves_submitted > 0


def test_seve_profile_covers_the_hot_seams():
    _, observed, observer = _run_pair("seve", SETTINGS)
    assert observed.profile is not None
    assert {
        "sim.dispatch",
        "host.service",
        "net.transmit",
        "server.push.scan",
        "server.push.closure",
        "server.push.build",
        "server.validate",
        "client.apply",
    } <= set(observed.profile)
    # sim_ms comes from the run's own charges, not from observation.
    assert observed.profile["client.apply"]["sim_ms"] > 0
    # Wall sampling really ran under profile=True.
    assert observed.profile["sim.dispatch"]["wall_ms"] > 0
    assert observer.profile.as_dict() == observed.profile


@pytest.mark.slow
@pytest.mark.faults
def test_observed_lossy_run_is_byte_identical_and_sees_arq():
    unobserved, observed, observer = _run_pair("seve", LOSSY_SETTINGS)
    assert _fingerprint(unobserved) == _fingerprint(observed)
    assert _report_bytes(unobserved) == _report_bytes(observed)
    # The degraded network actually exercised the recovery machinery,
    # and the observer saw exactly the retransmissions the meter counted.
    assert observed.retransmissions > 0
    assert (
        observer.metrics.counter("net.arq.retransmits").value
        == observed.retransmissions
    )
    assert observed.profile.get("net.arq.retransmit", {}).get("count", 0) > 0
