"""Self-test of the static RW-set escape analysis
(docs/static_analysis.md).

The checker must (1) flag every way the corpus's SneakyAction escapes
its declared sets, with file:line provenance; (2) accept honest
actions, including the repo's real world actions and examples — that
clean sweep is what scripts/test.sh enforces; (3) honour the
``# lint: allow(rwset-escape)`` waiver and contract inheritance.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.rwset_static import check_paths

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "lint_corpus"


def test_corpus_sneaky_action_escapes_are_all_caught():
    escapes = check_paths([CORPUS / "rwset_escape.py"], root=REPO)
    assert [e.cls for e in escapes] == ["SneakyAction"] * 4
    kinds = [e.kind for e in escapes]
    assert kinds.count("read") == 3  # undeclared attr, literal id, whole store
    assert kinds.count("write") == 1  # values keyed by the undeclared attr
    for escape in escapes:
        assert escape.path == "tests/lint_corpus/rwset_escape.py"
        assert escape.line > 0
        assert escape.method == "compute"
        assert f":{escape.line}:" in escape.render()


def test_repo_world_actions_and_examples_are_clean():
    escapes = check_paths(
        [REPO / "src" / "repro" / "world", REPO / "examples"], root=REPO
    )
    assert escapes == [], "\n".join(e.render() for e in escapes)


def test_honest_action_with_helper_methods_is_clean(tmp_path):
    # Safe-expression propagation: locals bound from declared attrs,
    # loop variables over them, and sorted()/frozenset() wrappers.
    path = tmp_path / "honest.py"
    path.write_text(
        "class Action: pass\n"
        "class Sweep(Action):\n"
        "    def __init__(self, action_id, targets):\n"
        "        super().__init__(action_id, reads=frozenset(targets),\n"
        "                         writes=frozenset(targets))\n"
        "        self.targets = targets\n"
        "    def compute(self, store):\n"
        "        values = {}\n"
        "        chosen = sorted(self.targets)\n"
        "        for oid in chosen:\n"
        "            hp = store.get(oid).get('hp')\n"
        "            values[oid] = {'hp': hp + 1}\n"
        "        return values\n"
    )
    assert check_paths([path]) == []


def test_subclass_without_init_inherits_the_contract(tmp_path):
    path = tmp_path / "inherit.py"
    path.write_text(
        "class Action: pass\n"
        "class Base(Action):\n"
        "    def __init__(self, action_id, target):\n"
        "        super().__init__(action_id, reads=frozenset({target}),\n"
        "                         writes=frozenset({target}))\n"
        "        self.target = target\n"
        "class Derived(Base):\n"
        "    def compute(self, store):\n"
        "        return {self.target: {'hp': store.get(self.target).get('hp')}}\n"
    )
    assert check_paths([path]) == []


def test_allow_comment_waives_a_single_escape(tmp_path):
    path = tmp_path / "waived.py"
    path.write_text(
        "class Action: pass\n"
        "class Peeker(Action):\n"
        "    def __init__(self, action_id, target):\n"
        "        super().__init__(action_id, reads=frozenset({target}),\n"
        "                         writes=frozenset({target}))\n"
        "        self.target = target\n"
        "    def compute(self, store):\n"
        "        a = store.get('waived-id')  # lint: allow(rwset-escape)\n"
        "        b = store.get('flagged-id')\n"
        "        return {self.target: {'hp': 0}}\n"
    )
    escapes = check_paths([path])
    assert len(escapes) == 1
    assert "flagged-id" in escapes[0].expr
