"""Unit/integration tests for the Incomplete World server (Algorithms 5-6)
in reactive mode, plus commit-path and GC behaviour."""

from __future__ import annotations

import pytest

from repro.core.action import Action, ActionId, ActionResult, BlindWrite
from repro.core.messages import (
    ActionBatch,
    Completion,
    SubmitAction,
    wire_size,
)
from repro.core.server_incomplete import IncompleteWorldServer
from repro.errors import ConfigurationError, ProtocolError
from repro.core.first_bound import FirstBoundPredicate
from repro.core.info_bound import InformationBound
from repro.net.host import Host
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.state.objects import WorldObject
from repro.state.versioned import VersionedStore
from repro.types import SERVER_ID


class Touch(Action):
    """Reads/writes a named object, declaring an extra read set."""

    def __init__(self, action_id, oid, extra_reads=(), value=1):
        super().__init__(
            action_id,
            reads=frozenset({oid}) | frozenset(extra_reads),
            writes=frozenset({oid}),
        )
        self.oid = oid
        self.value = value

    def compute(self, store):
        return {self.oid: {"v": self.value}}


class Rig:
    """Reactive-mode incomplete server with scripted clients."""

    def __init__(self, clients=(0, 1)):
        self.sim = Simulator()
        self.network = Network(self.sim, rtt_ms=100.0)
        self.state = VersionedStore(
            [WorldObject(f"o:{i}", {"v": 0}) for i in range(4)]
        )
        self.server = IncompleteWorldServer(
            self.sim,
            self.network,
            Host(self.sim, SERVER_ID),
            self.state,
        )
        self.inboxes = {}
        for cid in clients:
            self.inboxes[cid] = []
            self.network.register(
                cid, lambda src, msg, cid=cid: self.inboxes[cid].append(msg)
            )
            self.server.attach_client(cid)
        self._seq = 0

    def submit(self, client_id, oid, extra_reads=(), value=1):
        action = Touch(ActionId(client_id, self._seq), oid, extra_reads, value)
        self._seq += 1
        message = SubmitAction(action)
        self.network.send(client_id, SERVER_ID, message, wire_size(message))
        self.sim.run()
        return action

    def complete(self, client_id, pos, action, values=None):
        result = ActionResult.of(
            values if values is not None else {action.oid: {"v": action.value}}
        )
        message = Completion(pos, action.action_id, result, reporter=client_id)
        self.network.send(client_id, SERVER_ID, message, wire_size(message))
        self.sim.run()

    def last_batch(self, client_id) -> ActionBatch:
        batches = [m for m in self.inboxes[client_id] if isinstance(m, ActionBatch)]
        return batches[-1]


def test_info_bound_requires_push_mode():
    sim = Simulator()
    network = Network(sim, rtt_ms=10.0)
    with pytest.raises(ConfigurationError):
        IncompleteWorldServer(
            sim,
            network,
            Host(sim, SERVER_ID),
            VersionedStore(),
            predicate=None,
            info_bound=InformationBound(10.0),
        )


def test_reply_contains_blind_write_then_action():
    rig = Rig()
    action = rig.submit(0, "o:0")
    batch = rig.last_batch(0)
    assert len(batch.entries) == 2
    blind, own = batch.entries
    assert blind.pos == -1
    assert isinstance(blind.action, BlindWrite)
    assert blind.action.values() == {"o:0": {"v": 0}}
    assert own.pos == 0
    assert own.action is action


def test_second_reply_skips_known_seed():
    rig = Rig()
    first = rig.submit(0, "o:0")
    rig.complete(0, 0, first)
    rig.submit(0, "o:0")
    batch = rig.last_batch(0)
    # Client already holds o:0 at the committed version it produced.
    assert len(batch.entries) == 1
    assert batch.entries[0].pos == 1


def test_closure_ships_conflicting_uncommitted_action():
    rig = Rig()
    first = rig.submit(0, "o:0")  # uncommitted writer of o:0
    rig.submit(1, "o:1", extra_reads=("o:0",))
    batch = rig.last_batch(1)
    positions = [entry.pos for entry in batch.entries]
    # Blind write, then first (pos 0), then own (pos 1).
    assert positions == [-1, 0, 1]
    assert batch.entries[1].action is first


def test_unrelated_action_not_shipped():
    rig = Rig()
    rig.submit(0, "o:0")
    rig.submit(1, "o:1")
    batch = rig.last_batch(1)
    positions = [entry.pos for entry in batch.entries]
    assert positions == [-1, 1]


def test_commit_installs_in_order_and_gcs():
    rig = Rig()
    first = rig.submit(0, "o:0", value=5)
    second = rig.submit(1, "o:1", value=7)
    assert rig.server.uncommitted_count == 2
    # Completing the second first must hold installation.
    rig.complete(1, 1, second)
    assert rig.server.commit_frontier == -1
    assert rig.state.get("o:1")["v"] == 0
    rig.complete(0, 0, first)
    assert rig.server.commit_frontier == 1
    assert rig.state.get("o:0")["v"] == 5
    assert rig.state.get("o:1")["v"] == 7
    assert rig.server.uncommitted_count == 0
    assert rig.server.stats.actions_committed == 2


def test_duplicate_completion_below_frontier_ignored():
    rig = Rig()
    first = rig.submit(0, "o:0", value=5)
    rig.complete(0, 0, first)
    rig.complete(1, 0, first)  # late duplicate from another reporter
    assert rig.server.commit_frontier == 0


def test_completion_for_unknown_position_raises():
    rig = Rig()
    action = rig.submit(0, "o:0")
    message = Completion(99, action.action_id, ActionResult.of({}), reporter=0)
    rig.network.send(0, SERVER_ID, message, 10)
    with pytest.raises(ProtocolError):
        rig.sim.run()


def test_completion_id_mismatch_raises():
    rig = Rig()
    rig.submit(0, "o:0")
    message = Completion(0, ActionId(0, 999), ActionResult.of({}), reporter=0)
    rig.network.send(0, SERVER_ID, message, 10)
    with pytest.raises(ProtocolError):
        rig.sim.run()


def test_batches_piggyback_commit_frontier():
    rig = Rig()
    first = rig.submit(0, "o:0")
    rig.complete(0, 0, first)
    rig.submit(0, "o:1")
    assert rig.last_batch(0).last_installed == 0


def test_detach_client_forgets_known_values():
    rig = Rig()
    first = rig.submit(0, "o:0")
    rig.complete(0, 0, first)
    rig.server.detach_client(0)
    rig.server.attach_client(0)
    rig.submit(0, "o:0")
    batch = rig.last_batch(0)
    # Fresh attach: seed must be sent again.
    assert isinstance(batch.entries[0].action, BlindWrite)


def test_double_attach_raises():
    rig = Rig()
    with pytest.raises(ProtocolError):
        rig.server.attach_client(0)


def test_conflicting_reported_results_raise():
    rig = Rig()
    action = rig.submit(0, "o:0", value=5)
    rig.complete(0, 0, action)
    # Need a second live entry to exercise disagreement on.
    other = rig.submit(1, "o:2", value=3)
    rig.complete(1, 1, other)
    third = rig.submit(0, "o:3", value=9)
    rig.complete(0, 2, third, values={"o:3": {"v": 9}})
    message = Completion(
        2, third.action_id, ActionResult.of({"o:3": {"v": 1}}), reporter=1
    )
    rig.network.send(1, SERVER_ID, message, 10)
    # pos 2 already committed -> ignored silently; use a fresh one instead.
    fourth = rig.submit(0, "o:0", value=2)
    rig.complete(0, 3, fourth, values={"o:0": {"v": 2}})
    # fourth committed; submit again and report twice with different values
    fifth = rig.submit(1, "o:1", value=4)
    rig.complete(1, 4, fifth, values={"o:1": {"v": 4}})
    assert rig.server.commit_frontier == 4


def test_server_closure_cost_charged():
    rig = Rig()
    rig.submit(0, "o:0")
    host = rig.server.host
    assert host.cpu_time_used == pytest.approx(
        rig.server.costs.timestamp_ms + rig.server.costs.closure_ms
    )


# ---------------------------------------------------------------------------
# Detach/eviction races (regression: dropped submissions used to burn
# the ActionId, absorbing the client's post-reattach resubmission as a
# "duplicate" forever)
# ---------------------------------------------------------------------------
def test_detached_submission_is_not_absorbed_as_duplicate():
    rig = Rig()
    rig.server.detach_client(0)
    action = rig.submit(0, "o:0")
    assert rig.server.stats.actions_serialized == 0
    rig.server.attach_client(0)
    message = SubmitAction(action)
    rig.network.send(0, SERVER_ID, message, wire_size(message))
    rig.sim.run()
    assert rig.server.stats.actions_serialized == 1
    assert rig.server.stats.duplicate_submissions == 0


def test_eviction_between_receipt_and_admission_unburns_action_id():
    rig = Rig()
    action = Touch(ActionId(0, 99), "o:0")
    # Deliver directly, then detach before the host's admission work
    # item runs — the raced-eviction window.
    rig.server._on_message(0, SubmitAction(action))
    rig.server.detach_client(0)
    rig.sim.run()
    assert rig.server.stats.actions_serialized == 0
    rig.server.attach_client(0)
    message = SubmitAction(action)
    rig.network.send(0, SERVER_ID, message, wire_size(message))
    rig.sim.run()
    assert rig.server.stats.actions_serialized == 1
    assert rig.server.stats.duplicate_submissions == 0
