"""Unit tests for wall generation, the wall field, and avatar helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.world.avatar import (
    avatar_id,
    avatar_object,
    avatar_position,
    set_avatar_position,
)
from repro.world.geometry import Vec2
from repro.world.walls import Wall, WallField, generate_walls


# ---------------------------------------------------------------------------
# Wall generation
# ---------------------------------------------------------------------------
def test_generate_count_and_bounds():
    walls = generate_walls(100, world_width=200.0, world_height=100.0, seed=1)
    assert len(walls) == 100
    for wall in walls:
        for p in (wall.a, wall.b):
            assert 0.0 <= p.x <= 200.0
            assert 0.0 <= p.y <= 100.0


def test_walls_are_axis_aligned_fixed_length():
    walls = generate_walls(50, world_width=100.0, world_height=100.0, wall_length=10.0)
    for wall in walls:
        assert wall.horizontal or wall.a.x == wall.b.x
        length = wall.a.distance_to(wall.b)
        assert length == pytest.approx(10.0)


def test_generation_is_deterministic():
    kwargs = dict(world_width=100.0, world_height=100.0, seed=42)
    assert generate_walls(20, **kwargs) == generate_walls(20, **kwargs)


def test_different_seeds_differ():
    a = generate_walls(20, world_width=100.0, world_height=100.0, seed=1)
    b = generate_walls(20, world_width=100.0, world_height=100.0, seed=2)
    assert a != b


def test_zero_walls_ok():
    assert generate_walls(0, world_width=50.0, world_height=50.0) == []


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        generate_walls(-1, world_width=100.0, world_height=100.0)
    with pytest.raises(ConfigurationError):
        generate_walls(1, world_width=5.0, world_height=100.0, wall_length=10.0)
    with pytest.raises(ConfigurationError):
        generate_walls(1, world_width=100.0, world_height=100.0, wall_length=0.0)


def test_wall_midpoint_and_bbox():
    wall = Wall(0, Vec2(0, 0), Vec2(10, 0))
    assert wall.midpoint == Vec2(5, 0)
    assert wall.bbox() == (0.0, 0.0, 10.0, 0.0)
    assert wall.horizontal


# ---------------------------------------------------------------------------
# WallField
# ---------------------------------------------------------------------------
@pytest.fixture
def field() -> WallField:
    walls = [
        Wall(0, Vec2(50, 40), Vec2(50, 60)),  # vertical wall at x=50
        Wall(1, Vec2(10, 10), Vec2(20, 10)),  # horizontal wall
    ]
    return WallField(walls, width=100.0, height=100.0)


def test_field_requires_positive_extent():
    with pytest.raises(ConfigurationError):
        WallField((), width=0.0, height=10.0)


def test_clamp_and_inside(field):
    assert field.inside(Vec2(50, 50))
    assert not field.inside(Vec2(150, 50))
    assert field.clamp_inside(Vec2(150, -5)) == Vec2(100.0, 0.0)


def test_walls_near(field):
    nearby = field.walls_near(Vec2(50, 50), 15.0)
    assert [w.index for w in nearby] == [0]
    assert field.walls_near(Vec2(90, 90), 5.0) == []


def test_first_obstruction_hits_crossing_wall(field):
    hit = field.first_obstruction(Vec2(40, 50), Vec2(60, 50))
    assert hit is not None and hit.index == 0


def test_first_obstruction_none_for_clear_path(field):
    assert field.first_obstruction(Vec2(80, 80), Vec2(90, 90)) is None


def test_first_obstruction_prefers_nearest():
    walls = [
        Wall(0, Vec2(30, 0), Vec2(30, 20)),
        Wall(1, Vec2(20, 0), Vec2(20, 20)),
    ]
    field = WallField(walls, width=100.0, height=100.0)
    hit = field.first_obstruction(Vec2(0, 10), Vec2(50, 10))
    assert hit.index == 1  # nearer along the path


def test_path_blocked_by_border(field):
    assert field.path_blocked(Vec2(95, 50), Vec2(105, 50))
    assert not field.path_blocked(Vec2(80, 80), Vec2(90, 90))


def test_path_blocked_by_wall(field):
    assert field.path_blocked(Vec2(40, 50), Vec2(60, 50))


@given(
    x0=st.floats(min_value=0, max_value=100),
    y0=st.floats(min_value=0, max_value=100),
    x1=st.floats(min_value=0, max_value=100),
    y1=st.floats(min_value=0, max_value=100),
)
def test_obstruction_matches_brute_force(x0, y0, x1, y1):
    walls = generate_walls(40, world_width=100.0, world_height=100.0, seed=3)
    field = WallField(walls, width=100.0, height=100.0)
    start, end = Vec2(x0, y0), Vec2(x1, y1)
    from repro.world.geometry import segments_intersect

    expected_any = any(
        segments_intersect(start, end, w.a, w.b) for w in walls
    )
    assert (field.first_obstruction(start, end) is not None) == expected_any


# ---------------------------------------------------------------------------
# Avatar helpers
# ---------------------------------------------------------------------------
def test_avatar_schema():
    obj = avatar_object(3, Vec2(10, 20), heading=1.0, speed=5.0, health=80)
    assert obj.oid == avatar_id(3) == "avatar:3"
    assert avatar_position(obj) == Vec2(10, 20)
    assert obj["speed"] == 5.0
    assert obj["health"] == 80
    assert obj["alive"] is True
    assert obj["bumps"] == 0


def test_set_avatar_position():
    obj = avatar_object(0, Vec2(0, 0))
    set_avatar_position(obj, Vec2(7, 8))
    assert avatar_position(obj) == Vec2(7, 8)
