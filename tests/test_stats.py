"""Unit tests for traffic metering and summary statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.stats import LatencySampler, SummaryStats, TrafficMeter


def test_traffic_meter_accumulates():
    meter = TrafficMeter()
    meter.record(0, -1, 100)
    meter.record(-1, 0, 50)
    meter.record(1, -1, 25)
    assert meter.total_bytes == 175
    assert meter.total_messages == 3
    assert meter.bytes_sent[0] == 100
    assert meter.bytes_received[-1] == 125
    assert meter.pair_bytes[(0, -1)] == 100


def test_traffic_meter_kb():
    meter = TrafficMeter()
    meter.record(0, 1, 2048)
    assert meter.total_kb == pytest.approx(2.0)


def test_loss_debits_pair_bytes_alongside_receive_bytes():
    """Regression: note_dropped/note_undelivered used to take back the
    per-host receive credit but not the per-pair credit, inflating
    fan-out analyses under fault plans."""
    meter = TrafficMeter()
    meter.record(0, -1, 100)
    meter.record(0, -1, 60)
    meter.record(1, -1, 40)
    meter.note_dropped(0, -1, 60)
    assert meter.pair_bytes[(0, -1)] == 100
    assert meter.pair_bytes[(1, -1)] == 40
    assert meter.bytes_received[-1] == 140
    # Send-side accounting keeps the dropped bytes: they hit the wire.
    assert meter.bytes_sent[0] == 160
    assert meter.bytes_dropped == 60
    meter.note_undelivered(1, -1, 40)
    assert meter.pair_bytes[(1, -1)] == 0
    assert meter.bytes_received[-1] == 100


def test_summary_of_empty_is_nan():
    stats = SummaryStats.of([])
    assert stats.count == 0
    assert math.isnan(stats.mean)
    assert math.isnan(stats.p95)


def test_summary_single_value():
    stats = SummaryStats.of([42.0])
    assert stats.count == 1
    assert stats.mean == 42.0
    assert stats.minimum == 42.0
    assert stats.maximum == 42.0
    assert stats.p50 == 42.0
    assert stats.p99 == 42.0
    assert stats.stddev == 0.0


def test_summary_known_values():
    stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0
    assert stats.p50 == 2.0


def test_percentiles_of_hundred_values():
    stats = SummaryStats.of(float(i) for i in range(1, 101))
    assert stats.p50 == 50.0
    assert stats.p95 == 95.0
    assert stats.p99 == 99.0


def test_sampler_overall_and_per_client():
    sampler = LatencySampler()
    sampler.record(10.0, client=0)
    sampler.record(20.0, client=0)
    sampler.record(30.0, client=1)
    assert sampler.summary().count == 3
    assert sampler.mean == pytest.approx(20.0)
    assert sampler.client_summary(0).mean == pytest.approx(15.0)
    assert sampler.client_summary(1).count == 1


def test_sampler_without_client_attribution():
    sampler = LatencySampler()
    sampler.record(5.0)
    assert sampler.summary().count == 1
    assert sampler.client_summary(0).count == 0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_summary_bounds_property(values):
    stats = SummaryStats.of(values)
    tol = 1e-6 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum - tol <= stats.mean <= stats.maximum + tol
    assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
    assert stats.stddev >= 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_summary_scale_invariance(values):
    base = SummaryStats.of(values)
    shifted = SummaryStats.of(v + 100.0 for v in values)
    assert shifted.mean == pytest.approx(base.mean + 100.0, rel=1e-9, abs=1e-6)
    assert shifted.stddev == pytest.approx(base.stddev, rel=1e-9, abs=1e-6)
