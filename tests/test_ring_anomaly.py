"""The Figure 2/3 arrow anomaly.

Three archers stand in a line: A — B — C, with visibility such that B
sees both A and C, but A cannot see C.  At (virtual) time 0, C shoots B
dead; moments later — before C's arrow is known to anyone else — B
shoots A.

* Under the RING-like architecture, the client hosting A never receives
  C's shot (C is invisible to A), so it evaluates B's shot against a
  world where B is still alive: A dies on A's screen, while the server
  and B's replica know the arrow fizzled.  Permanent divergence.
* Under SEVE, the server serializes both shots and the transitive
  closure ships C's shot to everyone who must evaluate B's shot, so
  every replica agrees: B died first, the arrow fizzled, A lives.
"""

from __future__ import annotations

from typing import Iterable, Optional

import pytest

from repro.baselines.common import BaselineConfig
from repro.baselines.ring import RingEngine
from repro.core.engine import SeveConfig, SeveEngine
from repro.state.objects import WorldObject
from repro.types import ClientId, ObjectId
from repro.world.avatar import avatar_id, avatar_object
from repro.world.base import World
from repro.world.combat import ShootArrowAction
from repro.world.geometry import Vec2

VISIBILITY = 40.0
POSITIONS = {0: Vec2(0.0, 0.0), 1: Vec2(35.0, 0.0), 2: Vec2(70.0, 0.0)}
A, B, C = 0, 1, 2


class ArrowWorld(World):
    """Three stationary archers on a line."""

    def initial_objects(self) -> Iterable[WorldObject]:
        for index, position in POSITIONS.items():
            yield avatar_object(index, position, speed=0.0)

    def avatar_of(self, client_id: ClientId) -> Optional[ObjectId]:
        return avatar_id(client_id) if client_id in POSITIONS else None

    @property
    def max_speed(self) -> float:
        return 0.0

    def client_radius(self, client_id: ClientId) -> float:
        return VISIBILITY


def shot(shooter: int, target: int, seq: int = 0) -> ShootArrowAction:
    return ShootArrowAction(
        ActionIdOf(shooter, seq),
        avatar_id(shooter),
        avatar_id(target),
        damage=100,
        position=POSITIONS[shooter],
        shot_range=VISIBILITY,
        cost_ms=1.0,
    )


def ActionIdOf(client, seq):
    from repro.core.action import ActionId

    return ActionId(client, seq)


def play_ring():
    engine = RingEngine(
        ArrowWorld(), 3, BaselineConfig(rtt_ms=100.0, bandwidth_bps=None),
        visibility=VISIBILITY,
    )
    engine.sim.schedule(0.0, lambda: engine.submit(C, shot(C, B)))
    engine.sim.schedule(40.0, lambda: engine.submit(B, shot(B, A)))
    engine.run()
    return engine


def play_seve():
    world = ArrowWorld()
    engine = SeveEngine(
        world,
        3,
        SeveConfig(
            mode="seve", rtt_ms=100.0, tick_ms=20.0, seed_full_state=True
        ),
    )
    engine.start(stop_at=5_000)
    engine.sim.schedule(
        0.0, lambda: engine.client(C).submit(shot(C, B))
    )
    engine.sim.schedule(
        40.0, lambda: engine.client(B).submit(shot(B, A))
    )
    engine.run(until=2_000)
    engine.run_to_quiescence()
    return engine


def test_ring_shows_the_causal_anomaly():
    engine = play_ring()
    # B died everywhere the shot was seen.
    assert engine.state.get(avatar_id(B))["alive"] is False
    # A's replica believes A is dead (it never saw C's shot) ...
    assert engine.clients[A].store.get(avatar_id(A))["alive"] is False
    # ... but the authoritative server knows the arrow fizzled.
    assert engine.state.get(avatar_id(A))["alive"] is True
    # And B's own replica agrees A survived: permanent divergence.
    assert engine.clients[B].store.get(avatar_id(A))["alive"] is True


def test_seve_keeps_every_replica_consistent():
    engine = play_seve()
    # Authoritative outcome: B died first, so B's arrow fizzled.
    assert engine.state.get(avatar_id(B))["alive"] is False
    assert engine.state.get(avatar_id(A))["alive"] is True
    # Every replica that knows about A agrees A is alive.
    for cid, client in engine.clients.items():
        if avatar_id(A) in client.stable:
            assert client.stable.get(avatar_id(A))["alive"] is True, cid
    # And B's death is equally agreed upon.
    for cid, client in engine.clients.items():
        if avatar_id(B) in client.stable:
            assert client.stable.get(avatar_id(B))["alive"] is False, cid


def test_seve_shooters_observe_the_fizzle():
    engine = play_seve()
    # B's optimistic evaluation thought the shot worked; the stable
    # outcome aborted it, so B must have reconciled.
    assert engine.clients[B].stats.mismatches >= 1


def test_ring_anomaly_quantified_by_divergence():
    from repro.metrics.consistency import pairwise_divergence

    engine = play_ring()
    divergent = pairwise_divergence(
        {cid: c.store for cid, c in engine.clients.items()}
    )
    assert any(oid == avatar_id(A) for _, _, oid in divergent)
